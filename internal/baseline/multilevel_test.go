package baseline

import (
	"testing"

	"senkf/internal/core"
	"senkf/internal/enkf"
	"senkf/internal/ensio"
	"senkf/internal/grid"
	"senkf/internal/obs"
	"senkf/internal/workload"
)

// setupML builds a 3-level problem with member files on disk and the
// per-level serial references.
func setupML(t *testing.T) (MultiLevelProblem, grid.Decomposition, [][][]float64) {
	t.Helper()
	const levels = 3
	ps := workload.TestScale
	m, err := ps.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	truths, err := workload.TruthLevels(m, workload.DefaultFieldSpec, levels, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	members, err := workload.EnsembleLevels(m, truths, ps.Members, ps.Spread, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := ensio.WriteEnsembleLevels(dir, m, members); err != nil {
		t.Fatal(err)
	}
	nets := make([]*obs.Network, levels)
	for l := range nets {
		nets[l], err = obs.StridedNetwork(m, truths[l], ps.ObsStride, ps.ObsStride, ps.ObsVar, ps.Seed+uint64(l))
		if err != nil {
			t.Fatal(err)
		}
	}
	cfg := enkf.Config{Mesh: m, Radius: ps.Radius(), N: ps.Members, Seed: ps.Seed}
	dec, err := grid.NewDecomposition(m, 4, 2, cfg.Radius)
	if err != nil {
		t.Fatal(err)
	}
	// Per-level serial reference over [member][level] -> [level][member].
	refs := make([][][]float64, levels)
	for l := 0; l < levels; l++ {
		bg := make([][]float64, ps.Members)
		for k := 0; k < ps.Members; k++ {
			bg[k] = members[k][l]
		}
		refs[l], err = enkf.SerialReference(cfg, bg, nets[l])
		if err != nil {
			t.Fatal(err)
		}
	}
	return MultiLevelProblem{Cfg: cfg, Dir: dir, Nets: nets}, dec, refs
}

func TestMultiLevelTriangleWithPEnKF(t *testing.T) {
	// The multi-level P-EnKF baseline (block reads of all levels) matches
	// the multi-level S-EnKF (shared bar reads) and the per-level serial
	// reference exactly.
	p, dec, refs := setupML(t)
	sen, err := core.RunSEnKFMultiLevel(p, core.Plan{Dec: dec, L: 2, NCg: 4})
	if err != nil {
		t.Fatal(err)
	}
	pen, err := RunPEnKFMultiLevel(p, dec)
	if err != nil {
		t.Fatal(err)
	}
	for l := range refs {
		if d := enkf.MaxAbsDiffFields(sen[l], refs[l]); d != 0 {
			t.Errorf("level %d: S-EnKF differs by %g", l, d)
		}
		if d := enkf.MaxAbsDiffFields(pen[l], refs[l]); d != 0 {
			t.Errorf("level %d: P-EnKF differs by %g", l, d)
		}
	}
}
