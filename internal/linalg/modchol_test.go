package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

// sampleFromAR1 draws N samples of an AR(1) process over n variables with
// coefficient phi, whose true precision matrix is tridiagonal — exactly the
// structure the modified Cholesky estimator with band=1 should recover.
func sampleFromAR1(s *Stream, n, samples int, phi float64) *Matrix {
	u := NewMatrix(n, samples)
	for k := 0; k < samples; k++ {
		prev := s.Norm()
		u.Set(0, k, prev)
		sd := math.Sqrt(1 - phi*phi)
		for i := 1; i < n; i++ {
			v := phi*prev + sd*s.Norm()
			u.Set(i, k, v)
			prev = v
		}
	}
	CenterRows(u)
	return u
}

func TestModifiedCholeskyIsSPD(t *testing.T) {
	s := NewStream(11)
	u := sampleFromAR1(s, 12, 200, 0.6)
	for _, band := range []int{0, 1, 3, 11} {
		inv, err := ModifiedCholeskyPrecision(u, band, 1e-8)
		if err != nil {
			t.Fatalf("band=%d: %v", band, err)
		}
		if _, err := Cholesky(inv); err != nil {
			t.Errorf("band=%d: estimate not SPD: %v", band, err)
		}
		// Symmetry.
		for i := 0; i < inv.Rows; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(inv.At(i, j)-inv.At(j, i)) > 1e-12 {
					t.Fatalf("band=%d: asymmetric at (%d,%d)", band, i, j)
				}
			}
		}
	}
}

func TestModifiedCholeskyFullBandMatchesInverseSampleCov(t *testing.T) {
	// With band ≥ n−1 and no ridge, (I−T)ᵀD⁻¹(I−T) is exactly the inverse
	// of the sample covariance (when it is invertible).
	s := NewStream(12)
	n, samples := 6, 300
	u := sampleFromAR1(s, n, samples, 0.4)
	inv, err := ModifiedCholeskyPrecision(u, n-1, 0)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := SampleCovariance(u)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := MatMul(inv, cov)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := MaxAbsDiff(prod, Identity(n)); d > 1e-6 {
		t.Errorf("full-band modified Cholesky is not the exact inverse: |B̂⁻¹·S − I| = %g", d)
	}
}

func TestModifiedCholeskyBandRecoversTridiagonalStructure(t *testing.T) {
	s := NewStream(13)
	n := 10
	u := sampleFromAR1(s, n, 4000, 0.7)
	inv, err := ModifiedCholeskyPrecision(u, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Off-tridiagonal entries must be exactly zero by construction
	// (band=1 regressions only couple adjacent variables).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j < i-1 || j > i+1 {
				if inv.At(i, j) != 0 {
					t.Fatalf("band=1 estimate non-zero outside tridiagonal at (%d,%d): %g", i, j, inv.At(i, j))
				}
			}
		}
	}
	// The AR(1) precision has known form: diag 1/(1-phi²) scaled pattern.
	// Check the sign pattern: negative off-diagonals for positive phi.
	for i := 0; i+1 < n; i++ {
		if inv.At(i, i+1) >= 0 {
			t.Errorf("expected negative off-diagonal at (%d,%d), got %g", i, i+1, inv.At(i, i+1))
		}
	}
}

func TestModifiedCholeskyErrors(t *testing.T) {
	u := NewMatrix(3, 1)
	if _, err := ModifiedCholeskyPrecision(u, 1, 0); err == nil {
		t.Error("expected error for a single sample")
	}
	u2 := NewMatrix(3, 5)
	if _, err := ModifiedCholeskyPrecision(u2, -1, 0); err == nil {
		t.Error("expected error for negative band")
	}
}

func TestGaspariCohnProperties(t *testing.T) {
	if g := GaspariCohn(0); math.Abs(g-1) > 1e-12 {
		t.Errorf("GC(0) = %g, want 1", g)
	}
	for _, z := range []float64{2, 2.5, 10} {
		if g := GaspariCohn(z); g != 0 {
			t.Errorf("GC(%g) = %g, want 0", z, g)
		}
	}
	// Monotone decreasing on [0, 2], continuous at z=1, and symmetric.
	prev := 1.0
	for z := 0.01; z <= 2.0; z += 0.01 {
		g := GaspariCohn(z)
		if g > prev+1e-9 {
			t.Fatalf("GC not monotone at z=%g: %g > %g", z, g, prev)
		}
		if g < -1e-12 {
			t.Fatalf("GC negative at z=%g: %g", z, g)
		}
		prev = g
	}
	if math.Abs(GaspariCohn(0.999)-GaspariCohn(1.001)) > 1e-2 {
		t.Error("GC discontinuous at z=1")
	}
	if GaspariCohn(-0.5) != GaspariCohn(0.5) {
		t.Error("GC not symmetric")
	}
}

func TestQuickModifiedCholeskySPD(t *testing.T) {
	f := func(seed uint64, nRaw, bandRaw uint8) bool {
		n := int(nRaw%8) + 2
		band := int(bandRaw) % n
		s := NewStream(seed)
		u := sampleFromAR1(s, n, 80, 0.5)
		inv, err := ModifiedCholeskyPrecision(u, band, 1e-8)
		if err != nil {
			return false
		}
		_, err = Cholesky(inv)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
