package linalg

import (
	"fmt"
	"math"
)

// SymmetricEigen computes the full eigendecomposition of a symmetric matrix
// a = Q·diag(vals)·Qᵀ using the cyclic Jacobi method. Eigenvalues are
// returned in ascending order with the matching eigenvectors as the columns
// of Q. Only the symmetric part of a is used. Jacobi is slow for huge
// matrices but robust and ideal for the N×N ensemble-space systems of the
// deterministic (ETKF) solver, with N at most a few hundred.
func SymmetricEigen(a *Matrix) ([]float64, *Matrix, error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("linalg: SymmetricEigen needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	// Work on the symmetrized copy.
	w := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w.Set(i, j, 0.5*(a.At(i, j)+a.At(j, i)))
		}
	}
	q := Identity(n)

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += w.At(i, j) * w.At(i, j)
			}
		}
		return s
	}
	norm := 0.0
	for _, v := range w.Data {
		norm += v * v
	}
	tol := 1e-30 * (norm + 1)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offDiag() <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for r := p + 1; r < n; r++ {
				apq := w.At(p, r)
				if apq == 0 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(r, r)
				// Stable rotation angle (Golub & Van Loan).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation to rows/columns p and r of w.
				for k := 0; k < n; k++ {
					akp := w.At(k, p)
					akq := w.At(k, r)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, r, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := w.At(p, k)
					aqk := w.At(r, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(r, k, s*apk+c*aqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					qkp := q.At(k, p)
					qkq := q.At(k, r)
					q.Set(k, p, c*qkp-s*qkq)
					q.Set(k, r, s*qkp+c*qkq)
				}
			}
		}
	}
	if offDiag() > 1e-10*(norm+1) {
		return nil, nil, fmt.Errorf("linalg: Jacobi did not converge (off-diagonal %g)", offDiag())
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs ascending (insertion sort over columns).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
			for k := 0; k < n; k++ {
				v1 := q.At(k, j)
				v2 := q.At(k, j-1)
				q.Set(k, j, v2)
				q.Set(k, j-1, v1)
			}
		}
	}
	return vals, q, nil
}

// SymmetricFunc applies the scalar function f to a symmetric matrix through
// its eigendecomposition: f(A) = Q·f(Λ)·Qᵀ. f must be defined on every
// eigenvalue of a.
func SymmetricFunc(a *Matrix, f func(float64) (float64, error)) (*Matrix, error) {
	vals, q, err := SymmetricEigen(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	fv := make([]float64, n)
	for i, v := range vals {
		fv[i], err = f(v)
		if err != nil {
			return nil, fmt.Errorf("linalg: SymmetricFunc at eigenvalue %g: %w", v, err)
		}
	}
	// Q·diag(fv)·Qᵀ without forming intermediates.
	out := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += q.At(i, k) * fv[k] * q.At(j, k)
			}
			out.Set(i, j, s)
			out.Set(j, i, s)
		}
	}
	return out, nil
}

// SPDInvSqrt returns A^{-1/2} for symmetric positive definite A.
func SPDInvSqrt(a *Matrix) (*Matrix, error) {
	return SymmetricFunc(a, func(v float64) (float64, error) {
		if v <= 0 {
			return 0, fmt.Errorf("non-positive eigenvalue %g", v)
		}
		return 1 / math.Sqrt(v), nil
	})
}
