package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSymmetricEigenReconstructs(t *testing.T) {
	s := NewStream(21)
	for _, n := range []int{1, 2, 5, 12, 30} {
		a := randomSPD(s, n)
		vals, q, err := SymmetricEigen(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Reconstruct Q·Λ·Qᵀ.
		rec := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var v float64
				for k := 0; k < n; k++ {
					v += q.At(i, k) * vals[k] * q.At(j, k)
				}
				rec.Set(i, j, v)
			}
		}
		if d, _ := MaxAbsDiff(a, rec); d > 1e-8*float64(n) {
			t.Errorf("n=%d: reconstruction error %g", n, d)
		}
		// Ascending eigenvalues.
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1] {
				t.Errorf("n=%d: eigenvalues not ascending: %v", n, vals)
				break
			}
		}
		// Orthonormal eigenvectors.
		qtq, err := MatMul(q.T(), q)
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := MaxAbsDiff(qtq, Identity(n)); d > 1e-9 {
			t.Errorf("n=%d: QᵀQ differs from I by %g", n, d)
		}
	}
}

func TestSymmetricEigenKnownValues(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a, _ := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, _, err := SymmetricEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Errorf("eigenvalues %v, want [1 3]", vals)
	}
	if _, _, err := SymmetricEigen(NewMatrix(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
}

func TestSymmetricEigenDiagonal(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 0, 5)
	a.Set(1, 1, -2)
	a.Set(2, 2, 1)
	vals, _, err := SymmetricEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-2, 1, 5}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Errorf("vals = %v, want %v", vals, want)
		}
	}
}

func TestSPDInvSqrt(t *testing.T) {
	s := NewStream(22)
	n := 10
	a := randomSPD(s, n)
	is, err := SPDInvSqrt(a)
	if err != nil {
		t.Fatal(err)
	}
	// is·a·is == I
	t1, err := MatMul(is, a)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := MatMul(t1, is)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := MaxAbsDiff(t2, Identity(n)); d > 1e-8 {
		t.Errorf("A^-1/2·A·A^-1/2 differs from I by %g", d)
	}
	// Symmetric.
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if math.Abs(is.At(i, j)-is.At(j, i)) > 1e-12 {
				t.Fatal("inverse square root not symmetric")
			}
		}
	}
	// Fails on indefinite matrices.
	indef, _ := FromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := SPDInvSqrt(indef); err == nil {
		t.Error("indefinite matrix accepted")
	}
}

func TestSymmetricFuncIdentity(t *testing.T) {
	s := NewStream(23)
	a := randomSPD(s, 6)
	same, err := SymmetricFunc(a, func(v float64) (float64, error) { return v, nil })
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := MaxAbsDiff(a, same); d > 1e-9 {
		t.Errorf("identity function changed the matrix by %g", d)
	}
}

func TestQuickEigenTraceAndOrthogonality(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%10) + 1
		s := NewStream(seed)
		a := randomSPD(s, n)
		vals, q, err := SymmetricEigen(a)
		if err != nil {
			return false
		}
		// Trace is preserved.
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += vals[i]
		}
		if math.Abs(trace-sum) > 1e-8*(math.Abs(trace)+1) {
			return false
		}
		// Columns have unit norm.
		for j := 0; j < n; j++ {
			var nrm float64
			for i := 0; i < n; i++ {
				nrm += q.At(i, j) * q.At(i, j)
			}
			if math.Abs(nrm-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
