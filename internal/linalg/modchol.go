package linalg

import (
	"fmt"
	"math"
)

// ModifiedCholeskyPrecision estimates the inverse covariance matrix B̂⁻¹ of
// the rows of the sample matrix U ∈ ℝ^{n×N} (n variables, N samples, rows
// already centred) using the modified Cholesky decomposition of Bickel &
// Levina, the estimator at the heart of P-EnKF (refs [23, 24] of the paper).
//
// Each variable i is regressed on its predecessors i-band … i-1 in the given
// ordering:
//
//	u_i = Σ_{j∈pred(i)} t_{ij} · u_j + ε_i,   Var(ε_i) = d_i
//
// giving B̂⁻¹ = (I − T)ᵀ D⁻¹ (I − T) with unit-lower-triangular-like
// (I − T) banded by `band`. The result is symmetric positive definite by
// construction whenever every residual variance is positive; `ridge` is
// added to each regression normal matrix for numerical robustness.
func ModifiedCholeskyPrecision(u *Matrix, band int, ridge float64) (*Matrix, error) {
	n, samples := u.Rows, u.Cols
	if samples < 2 {
		return nil, fmt.Errorf("linalg: modified Cholesky needs at least 2 samples, got %d", samples)
	}
	if band < 0 {
		return nil, fmt.Errorf("linalg: negative band %d", band)
	}
	denom := float64(samples - 1)

	// T coefficients (t[i] aligned to predecessor window) and residual
	// variances d[i].
	type reg struct {
		lo    int
		coeff []float64
	}
	regs := make([]reg, n)
	d := make([]float64, n)

	resid := make([]float64, samples)
	for i := 0; i < n; i++ {
		lo := i - band
		if lo < 0 {
			lo = 0
		}
		p := i - lo
		ui := u.Row(i)
		if p == 0 {
			v := Dot(ui, ui) / denom
			if v <= 0 {
				v = ridge
				if v <= 0 {
					return nil, fmt.Errorf("linalg: zero variance at variable %d", i)
				}
			}
			d[i] = v
			regs[i] = reg{lo: lo}
			continue
		}
		// Normal equations G·t = g over the predecessor window.
		g := NewMatrix(p, p)
		rhs := make([]float64, p)
		for a := 0; a < p; a++ {
			ua := u.Row(lo + a)
			rhs[a] = Dot(ua, ui) / denom
			for b := a; b < p; b++ {
				v := Dot(ua, u.Row(lo+b)) / denom
				g.Set(a, b, v)
				g.Set(b, a, v)
			}
			g.Data[a*p+a] += ridge
		}
		t, err := Solve(g, rhs)
		if err != nil {
			return nil, fmt.Errorf("linalg: regression for variable %d: %w", i, err)
		}
		copy(resid, ui)
		for a := 0; a < p; a++ {
			ua := u.Row(lo + a)
			ta := t[a]
			for s := 0; s < samples; s++ {
				resid[s] -= ta * ua[s]
			}
		}
		v := Dot(resid[:samples], resid[:samples])/denom + ridge
		if v <= 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("linalg: non-positive residual variance %g at variable %d", v, i)
		}
		d[i] = v
		regs[i] = reg{lo: lo, coeff: t}
	}

	// B̂⁻¹ = Wᵀ D⁻¹ W with W = I − T (row i has 1 at i and −t over window).
	// W is banded, so accumulate only overlapping windows.
	inv := NewMatrix(n, n)
	wrow := func(i, j int) float64 {
		if j == i {
			return 1
		}
		r := regs[i]
		if j >= r.lo && j < i {
			return -r.coeff[j-r.lo]
		}
		return 0
	}
	for k := 0; k < n; k++ {
		dk := 1 / d[k]
		lo := k - 0 // row k of W spans [regs[k].lo, k]
		_ = lo
		// Non-zero columns of W row k: [regs[k].lo, k].
		for a := regs[k].lo; a <= k; a++ {
			wa := wrow(k, a)
			if wa == 0 {
				continue
			}
			for b := a; b <= k; b++ {
				wb := wrow(k, b)
				if wb == 0 {
					continue
				}
				inv.Data[a*n+b] += wa * dk * wb
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			inv.Set(i, j, inv.At(j, i))
		}
	}
	return inv, nil
}

// SampleCovariance returns the sample covariance of the rows of U
// (rows already centred): U·Uᵀ/(N−1), Eq. (4) of the paper.
func SampleCovariance(u *Matrix) (*Matrix, error) {
	if u.Cols < 2 {
		return nil, fmt.Errorf("linalg: covariance needs at least 2 samples, got %d", u.Cols)
	}
	return AAT(u).Scale(1 / float64(u.Cols-1)), nil
}

// CenterRows subtracts the mean of every row in place and returns the means.
func CenterRows(u *Matrix) []float64 {
	means := make([]float64, u.Rows)
	inv := 1 / float64(u.Cols)
	for i := 0; i < u.Rows; i++ {
		row := u.Row(i)
		var m float64
		for _, v := range row {
			m += v
		}
		m *= inv
		for j := range row {
			row[j] -= m
		}
		means[i] = m
	}
	return means
}

// GaspariCohn evaluates the Gaspari–Cohn fifth-order piecewise-rational
// compactly supported correlation function at normalized distance z = d/c,
// where c is the localization length. It is 1 at z=0 and 0 for z ≥ 2.
// This implements the covariance-localization alternative of §2.2.
func GaspariCohn(z float64) float64 {
	z = math.Abs(z)
	switch {
	case z >= 2:
		return 0
	case z >= 1:
		return ((((z/12-0.5)*z+0.625)*z+5.0/3.0)*z-5)*z + 4 - 2.0/(3.0*z)
	default:
		return (((-0.25*z+0.5)*z+0.625)*z-5.0/3.0)*z*z + 1
	}
}
