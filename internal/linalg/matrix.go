// Package linalg provides the small dense linear algebra kernels the
// ensemble Kalman filter needs: matrix products, Cholesky factorization and
// solves, symmetric-positive-definite inverses, and the modified Cholesky
// decomposition (Bickel–Levina style banded regression) that P-EnKF uses to
// estimate the inverse background error covariance B̂⁻¹ (§2.3 of the paper,
// refs [23, 24]).
//
// Everything is implemented on top of the standard library only. Matrices
// are small in this application — local analyses work with matrices of
// dimension at most a few hundred — so the kernels favour clarity and
// numerical robustness over cache blocking, with a parallel path for the few
// larger products.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed r × c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative matrix dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("linalg: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(row))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddInPlace adds o to m element-wise; the shapes must match.
func (m *Matrix) AddInPlace(o *Matrix) error {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return fmt.Errorf("linalg: add shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols)
	}
	for i, v := range o.Data {
		m.Data[i] += v
	}
	return nil
}

// SubInPlace subtracts o from m element-wise; the shapes must match.
func (m *Matrix) SubInPlace(o *Matrix) error {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return fmt.Errorf("linalg: sub shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols)
	}
	for i, v := range o.Data {
		m.Data[i] -= v
	}
	return nil
}

// MatMul returns a·b.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(a.Rows, b.Cols)
	// ikj loop order: stream through b row-wise for locality.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += aik * brow[j]
			}
		}
	}
	return out, nil
}

// MatVec returns a·x as a fresh slice.
func MatVec(a *Matrix, x []float64) ([]float64, error) {
	if a.Cols != len(x) {
		return nil, fmt.Errorf("linalg: matvec shape mismatch %dx%d · %d", a.Rows, a.Cols, len(x))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AAT returns a·aᵀ (symmetric Gram matrix) without forming the transpose.
func AAT(a *Matrix) *Matrix {
	out := NewMatrix(a.Rows, a.Rows)
	for i := 0; i < a.Rows; i++ {
		ri := a.Row(i)
		for j := i; j < a.Rows; j++ {
			s := Dot(ri, a.Row(j))
			out.Set(i, j, s)
			out.Set(j, i, s)
		}
	}
	return out
}

// ATA returns aᵀ·a.
func ATA(a *Matrix) *Matrix {
	out := NewMatrix(a.Cols, a.Cols)
	for k := 0; k < a.Rows; k++ {
		row := a.Row(k)
		for i := 0; i < a.Cols; i++ {
			vi := row[i]
			if vi == 0 {
				continue
			}
			orow := out.Row(i)
			for j := i; j < a.Cols; j++ {
				orow[j] += vi * row[j]
			}
		}
	}
	for i := 0; i < out.Rows; i++ {
		for j := 0; j < i; j++ {
			out.Set(i, j, out.At(j, i))
		}
	}
	return out
}

// Identity returns the n × n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// AddDiagonal adds d[i] to element (i, i) in place.
func (m *Matrix) AddDiagonal(d []float64) error {
	if m.Rows != m.Cols || m.Rows != len(d) {
		return fmt.Errorf("linalg: AddDiagonal needs square matrix matching diagonal, got %dx%d and %d", m.Rows, m.Cols, len(d))
	}
	for i, v := range d {
		m.Data[i*m.Cols+i] += v
	}
	return nil
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// two same-shape matrices; useful in tests.
func MaxAbsDiff(a, b *Matrix) (float64, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return 0, fmt.Errorf("linalg: diff shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	var m float64
	for i, v := range a.Data {
		d := math.Abs(v - b.Data[i])
		if d > m {
			m = d
		}
	}
	return m, nil
}

// ErrNotPositiveDefinite is returned by Cholesky when a non-positive pivot
// is encountered.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with a = L·Lᵀ.
// a must be symmetric positive definite; only its lower triangle is read.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d is %g", ErrNotPositiveDefinite, j, d)
		}
		dj := math.Sqrt(d)
		lj[j] = dj
		for i := j + 1; i < n; i++ {
			li := l.Row(i)
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			li[j] = s / dj
		}
	}
	return l, nil
}

// SolveLower solves L·x = b for lower-triangular L (forward substitution).
func SolveLower(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if l.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: SolveLower shape mismatch %dx%d, b=%d", l.Rows, l.Cols, len(b))
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		row := l.Row(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		if row[i] == 0 {
			return nil, fmt.Errorf("linalg: singular triangular system at row %d", i)
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// SolveUpperFromLower solves Lᵀ·x = b given lower-triangular L
// (back substitution on the implicit transpose).
func SolveUpperFromLower(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if l.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: SolveUpper shape mismatch %dx%d, b=%d", l.Rows, l.Cols, len(b))
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		d := l.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("linalg: singular triangular system at row %d", i)
		}
		x[i] = s / d
	}
	return x, nil
}

// CholSolve solves a·x = b given the Cholesky factor L of a.
func CholSolve(l *Matrix, b []float64) ([]float64, error) {
	y, err := SolveLower(l, b)
	if err != nil {
		return nil, err
	}
	return SolveUpperFromLower(l, y)
}

// CholSolveMatrix solves a·X = B column-by-column given the Cholesky factor.
func CholSolveMatrix(l, bm *Matrix) (*Matrix, error) {
	if l.Rows != bm.Rows {
		return nil, fmt.Errorf("linalg: CholSolveMatrix shape mismatch %dx%d vs %dx%d", l.Rows, l.Cols, bm.Rows, bm.Cols)
	}
	out := NewMatrix(bm.Rows, bm.Cols)
	col := make([]float64, bm.Rows)
	for j := 0; j < bm.Cols; j++ {
		for i := 0; i < bm.Rows; i++ {
			col[i] = bm.At(i, j)
		}
		x, err := CholSolve(l, col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < bm.Rows; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out, nil
}

// SPDInverse inverts a symmetric positive definite matrix via Cholesky.
func SPDInverse(a *Matrix) (*Matrix, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return CholSolveMatrix(l, Identity(a.Rows))
}

// Solve solves a·x = b for symmetric positive definite a.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return CholSolve(l, b)
}
