package linalg

import "math"

// Stream is a small, fast, deterministic pseudo-random stream
// (SplitMix64-based) with a Box–Muller normal generator. Every consumer of
// randomness in the repository derives an independent Stream from a
// composite key, so results are identical regardless of the process layout
// — the property the correctness triangle between the serial reference,
// L-EnKF, P-EnKF and S-EnKF relies on.
type Stream struct {
	state uint64
	// cached second normal variate from Box–Muller
	haveSpare bool
	spare     float64
}

// NewStream seeds a stream. Streams seeded differently are effectively
// independent (SplitMix64 output quality).
func NewStream(seed uint64) *Stream {
	return &Stream{state: seed}
}

// KeyedStream derives a stream from a base seed and a list of integer keys
// (member index, grid point, observation id, ...). The mixing ensures
// distinct keys give uncorrelated streams.
func KeyedStream(seed uint64, keys ...int) *Stream {
	s := seed
	for _, k := range keys {
		s = mix64(s ^ (uint64(k)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03))
	}
	return NewStream(s)
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next raw 64-bit value.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return mix64(s.state)
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard normal variate via Box–Muller.
func (s *Stream) Norm() float64 {
	if s.haveSpare {
		s.haveSpare = false
		return s.spare
	}
	var u1 float64
	for {
		u1 = s.Float64()
		if u1 > 0 {
			break
		}
	}
	u2 := s.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	theta := 2 * math.Pi * u2
	s.spare = r * math.Sin(theta)
	s.haveSpare = true
	return r * math.Cos(theta)
}

// NormVec fills a fresh slice of n standard normal variates.
func (s *Stream) NormVec(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Norm()
	}
	return out
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("linalg: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
