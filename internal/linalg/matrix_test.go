package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func randomMatrix(s *Stream, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = s.Norm()
	}
	return m
}

// randomSPD builds A·Aᵀ + n·I which is comfortably positive definite.
func randomSPD(s *Stream, n int) *Matrix {
	a := randomMatrix(s, n, n+2)
	spd := AAT(a)
	for i := 0; i < n; i++ {
		spd.Data[i*n+i] += float64(n)
	}
	return spd
}

func TestMatMulAgainstHandComputed(t *testing.T) {
	a, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromRows([][]float64{{7, 8, 9}, {10, 11, 12}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{27, 30, 33}, {61, 68, 75}, {95, 106, 117}})
	if d, _ := MaxAbsDiff(got, want); d > tol {
		t.Errorf("MatMul wrong by %g", d)
	}
}

func TestMatMulShapeMismatch(t *testing.T) {
	if _, err := MatMul(NewMatrix(2, 3), NewMatrix(2, 3)); err == nil {
		t.Error("expected shape error")
	}
}

func TestMatVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got, err := MatVec(a, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MatVec = %v, want [6 15]", got)
	}
	if _, err := MatVec(a, []float64{1}); err == nil {
		t.Error("expected shape error")
	}
}

func TestTransposeInvolution(t *testing.T) {
	s := NewStream(1)
	a := randomMatrix(s, 4, 7)
	tt := a.T().T()
	if d, _ := MaxAbsDiff(a, tt); d != 0 {
		t.Errorf("transpose not an involution, diff %g", d)
	}
}

func TestAATMatchesExplicit(t *testing.T) {
	s := NewStream(2)
	a := randomMatrix(s, 5, 3)
	explicit, err := MatMul(a, a.T())
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := MaxAbsDiff(AAT(a), explicit); d > tol {
		t.Errorf("AAT differs from A·Aᵀ by %g", d)
	}
}

func TestATAMatchesExplicit(t *testing.T) {
	s := NewStream(3)
	a := randomMatrix(s, 5, 4)
	explicit, err := MatMul(a.T(), a)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := MaxAbsDiff(ATA(a), explicit); d > tol {
		t.Errorf("ATA differs from Aᵀ·A by %g", d)
	}
}

func TestCholeskyReconstructs(t *testing.T) {
	s := NewStream(4)
	for _, n := range []int{1, 2, 5, 20} {
		a := randomSPD(s, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec, err := MatMul(l, l.T())
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := MaxAbsDiff(a, rec); d > 1e-8*float64(n) {
			t.Errorf("n=%d: L·Lᵀ differs from A by %g", n, d)
		}
		// Lower triangular: upper strictly zero.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("n=%d: L not lower triangular at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Error("expected ErrNotPositiveDefinite")
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Error("expected square-matrix error")
	}
}

func TestSolveResidual(t *testing.T) {
	s := NewStream(5)
	for _, n := range []int{1, 3, 10, 40} {
		a := randomSPD(s, n)
		x := s.NormVec(n)
		b, err := MatVec(a, x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-7 {
				t.Fatalf("n=%d: solution wrong at %d: %g vs %g", n, i, got[i], x[i])
			}
		}
	}
}

func TestSPDInverse(t *testing.T) {
	s := NewStream(6)
	n := 8
	a := randomSPD(s, n)
	inv, err := SPDInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := MatMul(a, inv)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := MaxAbsDiff(prod, Identity(n)); d > 1e-8 {
		t.Errorf("A·A⁻¹ differs from I by %g", d)
	}
}

func TestTriangularSolves(t *testing.T) {
	l, _ := FromRows([][]float64{{2, 0, 0}, {1, 3, 0}, {4, 5, 6}})
	x := []float64{1, -2, 0.5}
	b, _ := MatVec(l, x)
	got, err := SolveLower(l, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(got[i]-x[i]) > tol {
			t.Fatalf("SolveLower wrong at %d", i)
		}
	}
	bt, _ := MatVec(l.T(), x)
	got, err = SolveUpperFromLower(l, bt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(got[i]-x[i]) > tol {
			t.Fatalf("SolveUpperFromLower wrong at %d", i)
		}
	}
}

func TestSingularTriangular(t *testing.T) {
	l, _ := FromRows([][]float64{{1, 0}, {2, 0}})
	if _, err := SolveLower(l, []float64{1, 1}); err == nil {
		t.Error("expected singular error")
	}
	if _, err := SolveUpperFromLower(l, []float64{1, 1}); err == nil {
		t.Error("expected singular error")
	}
}

func TestCenterRows(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {10, 20, 30}})
	means := CenterRows(m)
	if means[0] != 2 || means[1] != 20 {
		t.Errorf("means = %v", means)
	}
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += v
		}
		if math.Abs(s) > tol {
			t.Errorf("row %d not centred, sum %g", i, s)
		}
	}
}

func TestSampleCovarianceMatchesDefinition(t *testing.T) {
	s := NewStream(7)
	u := randomMatrix(s, 4, 9)
	CenterRows(u)
	cov, err := SampleCovariance(u)
	if err != nil {
		t.Fatal(err)
	}
	explicit, _ := MatMul(u, u.T())
	explicit.Scale(1.0 / 8.0)
	if d, _ := MaxAbsDiff(cov, explicit); d > tol {
		t.Errorf("covariance differs by %g", d)
	}
	if _, err := SampleCovariance(NewMatrix(3, 1)); err == nil {
		t.Error("expected error for single sample")
	}
}

func TestAddDiagonal(t *testing.T) {
	m := Identity(3)
	if err := m.AddDiagonal([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{2, 3, 4} {
		if m.At(i, i) != want {
			t.Errorf("diag[%d] = %g want %g", i, m.At(i, i), want)
		}
	}
	if err := m.AddDiagonal([]float64{1}); err == nil {
		t.Error("expected shape error")
	}
}

func TestQuickCholeskySolveRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%12) + 1
		s := NewStream(seed)
		a := randomSPD(s, n)
		x := s.NormVec(n)
		b, err := MatVec(a, x)
		if err != nil {
			return false
		}
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickMatMulAssociativityWithVector(t *testing.T) {
	// (A·B)·x == A·(B·x)
	f := func(seed uint64) bool {
		s := NewStream(seed)
		a := randomMatrix(s, 4, 5)
		b := randomMatrix(s, 5, 3)
		x := s.NormVec(3)
		ab, err := MatMul(a, b)
		if err != nil {
			return false
		}
		lhs, err := MatVec(ab, x)
		if err != nil {
			return false
		}
		bx, err := MatVec(b, x)
		if err != nil {
			return false
		}
		rhs, err := MatVec(a, bx)
		if err != nil {
			return false
		}
		for i := range lhs {
			if math.Abs(lhs[i]-rhs[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("expected ragged error")
	}
}
