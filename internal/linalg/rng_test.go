package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seed diverge at step %d", i)
		}
	}
}

func TestKeyedStreamOrderAndValueSensitivity(t *testing.T) {
	a := KeyedStream(1, 2, 3)
	b := KeyedStream(1, 3, 2)
	c := KeyedStream(1, 2, 3)
	if a.Uint64() == b.Uint64() {
		t.Error("keyed streams with swapped keys should differ")
	}
	a2 := KeyedStream(1, 2, 3)
	if a2.Uint64() != c.Uint64() {
		t.Error("keyed streams with same keys must match")
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(7)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestNormMomentsRoughlyStandard(t *testing.T) {
	s := NewStream(99)
	n := 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestNormVecLength(t *testing.T) {
	s := NewStream(3)
	v := s.NormVec(17)
	if len(v) != 17 {
		t.Fatalf("NormVec length %d, want 17", len(v))
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewStream(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) over 1000 draws hit only %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	s.Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := NewStream(6)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestQuickKeyedStreamsIndependentOfExtraKey(t *testing.T) {
	// Streams derived with different final keys should (almost surely)
	// produce different first values.
	f := func(seed uint64, k int) bool {
		a := KeyedStream(seed, k)
		b := KeyedStream(seed, k+1)
		return a.Uint64() != b.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
