package mpi

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// TestRankDeathMidCollectivePropagates kills one rank mid-barrier and
// asserts that every surviving rank comes back with a *RankFailedError
// naming the dead rank — no hang, no leaked goroutines.
func TestRankDeathMidCollectivePropagates(t *testing.T) {
	before := runtime.NumGoroutine()
	w, _ := NewWorld(6)
	boom := errors.New("simulated media failure")
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 3 {
			return boom // dies before entering the barrier
		}
		return c.Barrier()
	})
	if err == nil {
		t.Fatal("world succeeded despite a dead rank")
	}
	if !errors.Is(err, ErrAborted) {
		t.Errorf("joined error does not match ErrAborted: %v", err)
	}
	if !errors.Is(err, boom) {
		t.Errorf("joined error lost the original cause: %v", err)
	}
	var rf *RankFailedError
	if !errors.As(err, &rf) {
		t.Fatalf("no *RankFailedError in %v", err)
	}
	if rf.Rank != 3 {
		t.Errorf("RankFailedError names rank %d, want 3", rf.Rank)
	}
	// All goroutines must have exited (Run waits, but a leaked helper would
	// show up here).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestRankDeathMidAllreduce exercises the reduce+bcast tree: the root's
// collective partner dies and every live rank still unblocks.
func TestRankDeathMidAllreduce(t *testing.T) {
	w, _ := NewWorld(5)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("rank 1 media failure")
		}
		_, err := c.AllreduceSum([]float64{float64(c.Rank())})
		return err
	})
	if err == nil {
		t.Fatal("allreduce with a dead rank succeeded")
	}
	var rf *RankFailedError
	if !errors.As(err, &rf) || rf.Rank != 1 {
		t.Errorf("want RankFailedError{Rank: 1}, got %v", err)
	}
}

// TestRankFailedErrorIdentity pins the error-matching contract.
func TestRankFailedErrorIdentity(t *testing.T) {
	cause := errors.New("root cause")
	err := &RankFailedError{Rank: 7, Cause: cause}
	if !errors.Is(err, ErrAborted) {
		t.Error("RankFailedError does not match ErrAborted")
	}
	if !errors.Is(err, cause) {
		t.Error("RankFailedError does not unwrap to its cause")
	}
	if errors.Is(err, ErrDeadline) {
		t.Error("RankFailedError matches ErrDeadline")
	}
}

// TestRecvDeadlineFires waits on a peer that never sends: the deadline
// must fire with a *DeadlineError instead of hanging.
func TestRecvDeadlineFires(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			// Rank 1 stays silent but alive until rank 0 gives up.
			_, err := c.Recv(0, 9)
			return err
		}
		_, err := c.RecvDeadline(1, 5, 20*time.Millisecond)
		if !errors.Is(err, ErrDeadline) {
			return fmt.Errorf("deadline recv returned %v, want ErrDeadline", err)
		}
		var de *DeadlineError
		if !errors.As(err, &de) || de.Src != 1 || de.Tag != 5 {
			return fmt.Errorf("deadline error detail wrong: %v", err)
		}
		// Unblock rank 1 so the world drains cleanly.
		return c.Send(1, 9, nil, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecvDeadlineNotTriggeredByTimelyMessage makes sure a message beating
// the deadline is delivered normally and the timer does not fire later.
func TestRecvDeadlineNotTriggeredByTimelyMessage(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return c.Send(0, 4, nil, []float64{42})
		}
		m, err := c.RecvDeadline(1, 4, 5*time.Second)
		if err != nil {
			return err
		}
		if len(m.Data) != 1 || m.Data[0] != 42 {
			return fmt.Errorf("payload %v", m.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSendDeadlineRefusesDeadWorld asserts that SendDeadline reports the
// failed rank instead of enqueueing onto a poisoned inbox.
func TestSendDeadlineRefusesDeadWorld(t *testing.T) {
	w, _ := NewWorld(2)
	w.abortAll(&RankFailedError{Rank: 1, Cause: errors.New("gone")})
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		err := c.SendDeadline(1, 3, nil, []float64{1}, time.Second)
		var rf *RankFailedError
		if !errors.As(err, &rf) || rf.Rank != 1 {
			return fmt.Errorf("send into aborted world returned %v", err)
		}
		return nil
	})
	// The pre-poisoned world makes Run's own bookkeeping irrelevant here;
	// only the closure's explicit failures matter.
	if err != nil && !errors.Is(err, ErrAborted) {
		t.Fatal(err)
	}
}

// TestDeathWhilePeersBlockInSendRecvChain kills the middle of a ring so
// both neighbours are blocked in Recv when the abort lands.
func TestDeathWhilePeersBlockInSendRecvChain(t *testing.T) {
	w, _ := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		switch c.Rank() {
		case 1:
			time.Sleep(10 * time.Millisecond) // let the peers block first
			return errors.New("rank 1 dies")
		default:
			_, err := c.Recv(1, 0)
			return err
		}
	})
	var rf *RankFailedError
	if !errors.As(err, &rf) || rf.Rank != 1 {
		t.Fatalf("want RankFailedError{Rank: 1}, got %v", err)
	}
	// Both survivors must report the failure too (their Recv was poisoned).
	msg := err.Error()
	for _, want := range []string{"rank 0", "rank 2"} {
		if !contains(msg, want) {
			t.Errorf("joined error misses %s: %v", want, err)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
