package mpi

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"senkf/internal/trace"
)

func run(t *testing.T, n int, fn func(c *Comm) error) {
	t.Helper()
	w, err := NewWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(fn); err != nil {
		t.Fatal(err)
	}
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Error("expected error for size 0")
	}
	if _, err := NewWorld(-3); err == nil {
		t.Error("expected error for negative size")
	}
}

func TestRankAndSize(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	run(t, 5, func(c *Comm) error {
		if c.Size() != 5 {
			return fmt.Errorf("size %d", c.Size())
		}
		mu.Lock()
		seen[c.Rank()] = true
		mu.Unlock()
		return nil
	})
	if len(seen) != 5 {
		t.Errorf("saw %d distinct ranks, want 5", len(seen))
	}
}

func TestSendRecvPingPong(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []int{42}, []float64{1, 2, 3}); err != nil {
				return err
			}
			m, err := c.Recv(1, 8)
			if err != nil {
				return err
			}
			if m.Data[0] != 6 {
				return fmt.Errorf("pong payload %v", m.Data)
			}
			return nil
		}
		m, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if m.Src != 0 || m.Tag != 7 || m.Meta[0] != 42 {
			return fmt.Errorf("bad message %+v", m)
		}
		var s float64
		for _, v := range m.Data {
			s += v
		}
		return c.Send(0, 8, nil, []float64{s})
	})
}

func TestSendCopiesBuffers(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{1, 2}
			meta := []int{5}
			if err := c.Send(1, 1, meta, buf); err != nil {
				return err
			}
			buf[0] = 99 // mutate after send; receiver must see 1
			meta[0] = 99
			return nil
		}
		m, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if m.Data[0] != 1 || m.Meta[0] != 5 {
			return fmt.Errorf("send aliased buffers: %+v", m)
		}
		return nil
	})
}

func TestRecvWildcards(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				m, err := c.Recv(AnySource, AnyTag)
				if err != nil {
					return err
				}
				got[m.Src] = true
			}
			if !got[1] || !got[2] {
				return fmt.Errorf("wildcard recv missed a source: %v", got)
			}
			return nil
		default:
			return c.Send(0, 10+c.Rank(), nil, []float64{float64(c.Rank())})
		}
	})
}

func TestRecvFIFOPerSenderAndTag(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 50; i++ {
				if err := c.Send(1, 3, nil, []float64{float64(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 50; i++ {
			m, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if m.Data[0] != float64(i) {
				return fmt.Errorf("out of order: got %g want %d", m.Data[0], i)
			}
		}
		return nil
	})
}

func TestTagSelectionSkipsNonMatching(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, nil, []float64{1}); err != nil {
				return err
			}
			return c.Send(1, 2, nil, []float64{2})
		}
		// Receive tag 2 first even though tag 1 arrived first.
		m2, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		m1, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if m2.Data[0] != 2 || m1.Data[0] != 1 {
			return fmt.Errorf("tag selection wrong: %v %v", m2.Data, m1.Data)
		}
		return nil
	})
}

func TestSendRecvValidation(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if err := c.Send(5, 0, nil, nil); err == nil {
			return fmt.Errorf("expected out-of-range send error")
		}
		if err := c.Send(0, -1, nil, nil); err == nil {
			return fmt.Errorf("expected negative tag error")
		}
		if _, err := c.Recv(9, 0); err == nil {
			return fmt.Errorf("expected out-of-range recv error")
		}
		if _, err := c.Recv(0, -5); err == nil {
			return fmt.Errorf("expected negative tag recv error")
		}
		return nil
	})
}

func TestBcastFromEveryRoot(t *testing.T) {
	for root := 0; root < 4; root++ {
		root := root
		run(t, 4, func(c *Comm) error {
			var data []float64
			if c.Rank() == root {
				data = []float64{3.5, float64(root)}
			}
			got, err := c.Bcast(root, data)
			if err != nil {
				return err
			}
			if len(got) != 2 || got[0] != 3.5 || got[1] != float64(root) {
				return fmt.Errorf("rank %d: bcast got %v", c.Rank(), got)
			}
			return nil
		})
	}
}

func TestGather(t *testing.T) {
	run(t, 5, func(c *Comm) error {
		all, err := c.Gather(2, []float64{float64(c.Rank() * 10)})
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if all != nil {
				return fmt.Errorf("non-root got %v", all)
			}
			return nil
		}
		for r := 0; r < 5; r++ {
			if all[r][0] != float64(r*10) {
				return fmt.Errorf("gather[%d] = %v", r, all[r])
			}
		}
		return nil
	})
}

func TestScatter(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		var parts [][]float64
		if c.Rank() == 1 {
			parts = [][]float64{{0}, {1}, {2}, {3}}
		}
		part, err := c.Scatter(1, parts)
		if err != nil {
			return err
		}
		if len(part) != 1 || part[0] != float64(c.Rank()) {
			return fmt.Errorf("rank %d got %v", c.Rank(), part)
		}
		return nil
	})
}

func TestScatterValidatesParts(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			_, err := c.Scatter(0, [][]float64{{1}}) // wrong count
			if err == nil {
				return fmt.Errorf("expected parts-count error")
			}
			// Unblock rank 1 with a correct scatter.
			_, err = c.Scatter(0, [][]float64{{1}, {2}})
			return err
		}
		_, err := c.Scatter(0, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	// All ranks increment before the barrier; after the barrier every rank
	// must observe the full count.
	var mu sync.Mutex
	count := 0
	run(t, 8, func(c *Comm) error {
		mu.Lock()
		count++
		mu.Unlock()
		if err := c.Barrier(); err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if count != 8 {
			return fmt.Errorf("rank %d saw count %d after barrier", c.Rank(), count)
		}
		return nil
	})
}

func TestAllreduceSum(t *testing.T) {
	run(t, 6, func(c *Comm) error {
		got, err := c.AllreduceSum([]float64{1, float64(c.Rank())})
		if err != nil {
			return err
		}
		if got[0] != 6 || got[1] != 15 {
			return fmt.Errorf("allreduce got %v", got)
		}
		return nil
	})
}

func TestSplitByParity(t *testing.T) {
	run(t, 6, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		// New ranks ordered by key = old rank.
		wantRank := c.Rank() / 2
		if sub.Rank() != wantRank {
			return fmt.Errorf("old rank %d: sub rank %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// Sum of old ranks within the sub-communicator distinguishes groups.
		got, err := sub.AllreduceSum([]float64{float64(c.Rank())})
		if err != nil {
			return err
		}
		want := 0.0
		for r := c.Rank() % 2; r < 6; r += 2 {
			want += float64(r)
		}
		if got[0] != want {
			return fmt.Errorf("group sum %g, want %g", got[0], want)
		}
		return nil
	})
}

func TestSplitOptOut(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		color := 0
		if c.Rank() == 3 {
			color = -1
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 3 {
			if sub != nil {
				return fmt.Errorf("opt-out rank got a communicator")
			}
			return nil
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size %d, want 3", sub.Size())
		}
		return nil
	})
}

func TestSplitIsolatesMessageContexts(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, 0)
		if err != nil {
			return err
		}
		// Send within sub-communicator using the same tag as a world-level
		// message; they must not cross.
		if sub.Rank() == 0 {
			if err := sub.Send(1, 5, nil, []float64{100 + float64(c.Rank())}); err != nil {
				return err
			}
		} else {
			m, err := sub.Recv(0, 5)
			if err != nil {
				return err
			}
			// sub rank 0 of my group has world rank = my group's even/odd peer
			wantFrom := float64(100 + (c.Rank() % 2))
			if m.Data[0] != wantFrom {
				return fmt.Errorf("cross-context leak: got %v want %v", m.Data[0], wantFrom)
			}
		}
		return nil
	})
}

func TestRunCollectsErrors(t *testing.T) {
	w, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 1") || !strings.Contains(err.Error(), "boom") {
		t.Errorf("error = %v", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("error = %v", err)
	}
}

func TestManyRanksAllToOne(t *testing.T) {
	const n = 32
	run(t, n, func(c *Comm) error {
		if c.Rank() == 0 {
			var sum float64
			for i := 1; i < n; i++ {
				m, err := c.Recv(AnySource, 9)
				if err != nil {
					return err
				}
				sum += m.Data[0]
			}
			if sum != float64(n*(n-1)/2) {
				return fmt.Errorf("sum %g", sum)
			}
			return nil
		}
		return c.Send(0, 9, nil, []float64{float64(c.Rank())})
	})
}

func TestBcastRootValidation(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if _, err := c.Bcast(5, nil); err == nil {
			return fmt.Errorf("expected root range error")
		}
		if _, err := c.Gather(-1, nil); err == nil {
			return fmt.Errorf("expected root range error")
		}
		if _, err := c.Scatter(7, nil); err == nil {
			return fmt.Errorf("expected root range error")
		}
		return nil
	})
}

func TestAllreduceLengthMismatch(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		data := []float64{1}
		if c.Rank() == 1 {
			data = []float64{1, 2}
		}
		_, err := c.AllreduceSum(data)
		if c.Rank() == 0 {
			if err == nil {
				return fmt.Errorf("expected length mismatch error")
			}
			// Unblock rank 1's pending Bcast by sending what it expects.
			c.send(1, collBcast, nil, nil)
			return nil
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAbortUnblocksPendingReceives(t *testing.T) {
	// A failing rank must not deadlock ranks blocked in Recv.
	w, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return fmt.Errorf("simulated failure")
		}
		_, err := c.Recv(0, 1) // never sent
		if err == nil {
			return fmt.Errorf("expected abort error")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "simulated failure") {
		t.Errorf("error = %v", err)
	}
}

func TestCommStatsAccounting(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			// 2 meta ints + 3 data floats = 40 bytes.
			return c.Send(1, 7, []int{1, 2}, []float64{1, 2, 3})
		}
		_, err := c.Recv(0, 7)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := w.RankStats(0), w.RankStats(1)
	if s0.MsgsSent != 1 || s0.BytesSent != 40 || s0.MsgsRecvd != 0 {
		t.Errorf("rank 0 stats = %+v", s0)
	}
	if s1.MsgsRecvd != 1 || s1.BytesRecvd != 40 || s1.MsgsSent != 0 {
		t.Errorf("rank 1 stats = %+v", s1)
	}
	tot := w.TotalStats()
	if tot.BytesSent != tot.BytesRecvd || tot.MsgsSent != tot.MsgsRecvd {
		t.Errorf("quiescent world asymmetric: %+v", tot)
	}
}

func TestCommStatsCoverCollectives(t *testing.T) {
	w, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if _, err := c.Bcast(0, []float64{1, 2}); err != nil {
			return err
		}
		if _, err := c.AllreduceSum([]float64{float64(c.Rank())}); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := w.TotalStats()
	if tot.MsgsSent == 0 {
		t.Fatal("collectives accounted no messages")
	}
	if tot.MsgsSent != tot.MsgsRecvd || tot.BytesSent != tot.BytesRecvd {
		t.Errorf("collective totals asymmetric: %+v", tot)
	}
	// Comm.Stats returns the caller's world-rank slice of the same totals.
	var sum CommStats
	for r := 0; r < w.Size(); r++ {
		s := w.RankStats(r)
		sum.MsgsSent += s.MsgsSent
		sum.MsgsRecvd += s.MsgsRecvd
	}
	if sum != (CommStats{MsgsSent: tot.MsgsSent, MsgsRecvd: tot.MsgsRecvd,
		BytesSent: 0, BytesRecvd: 0}) && sum.MsgsSent != tot.MsgsSent {
		t.Errorf("per-rank sum %+v != total %+v", sum, tot)
	}
}

func TestMpiTracingSpans(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	buf := trace.NewBuffer()
	tr := trace.New(nil, buf)
	tr.SetCounters(trace.NewRegistry())
	w.SetTracer(tr)
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 3, nil, []float64{1})
		}
		_, err := c.Recv(0, 3)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	var recvSpan bool
	for _, ev := range buf.Events() {
		if ev.Cat == "mpi" && ev.Name == "recv" && ev.Track == "rank1" && ev.Ph == trace.PhaseSpan {
			if v, ok := ev.ArgValue("bytes"); !ok || v != 8 {
				t.Errorf("recv span bytes = %v, want 8", v)
			}
			recvSpan = true
		}
	}
	if !recvSpan {
		t.Error("no recv span on rank1 track")
	}
	reg := tr.Counters()
	if got := reg.CounterValue("mpi.msgs"); got != 1 {
		t.Errorf("mpi.msgs = %v, want 1", got)
	}
	if got := reg.CounterValue("mpi.bytes"); got != 8 {
		t.Errorf("mpi.bytes = %v, want 8", got)
	}
}
