// Package mpi is a message-passing runtime built on goroutines and
// channels-free mailbox matching, standing in for the MPI library the paper
// runs on (MPICH 3.1 over TH Express-2). It provides exactly the semantics
// the EnKF implementations need: a world of ranks executing the same
// function, matched point-to-point Send/Recv with source and tag selection
// (including wildcards), the collectives used by L-EnKF (Bcast, Scatter,
// Gather, Barrier, Allreduce), and communicator splitting.
//
// The runtime is a real concurrent substrate, not a simulation: sends and
// receives block and interleave exactly as goroutine scheduling dictates, so
// the overlap behaviour of S-EnKF's helper thread is exercised for real.
// (Large-scale *timing* is the job of internal/sim; this package is about
// correct parallel execution.)
package mpi

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"senkf/internal/trace"
)

// AnySource matches messages from any rank in Recv.
const AnySource = -1

// AnyTag matches messages with any (non-internal) tag in Recv.
const AnyTag = -1

// Message is a received message. Meta carries small integer metadata
// (box coordinates, member indices, stage numbers); Data carries the
// payload.
type Message struct {
	Src  int
	Tag  int
	Meta []int
	Data []float64
}

type envelope struct {
	context  int
	worldSrc int     // sender's world rank (Message.Src is communicator-scoped)
	sentAt   float64 // enqueue time on the world clock, stamped when observed
	Message
}

// MsgObserver receives one callback per delivered point-to-point message:
// sender and receiver world ranks, the message tag, the on-wire byte size
// (8·(meta+data) words, matching CommStats), the enqueue and delivery
// timestamps on the world clock (the tracer's clock when tracing, wall
// seconds since world creation otherwise), and the receiver's remaining
// inbox depth at match time. Callbacks run on receiving goroutines
// concurrently — implementations must be safe for concurrent use. The
// interface is declared here, structurally identical to the plan layer's
// MsgObserver, so one implementation (internal/wire's collector) serves
// both without this package importing the plan layer.
type MsgObserver interface {
	OnMessage(src, dst, tag int, bytes int64, sentAt, deliveredAt float64, depth int)
}

// ErrAborted is returned by blocked receives when another rank of the
// world failed: the runtime poisons all pending operations so a single
// failure cannot deadlock the whole world (MPI_Abort semantics). The
// concrete error is usually a *RankFailedError naming the failed rank;
// errors.Is(err, ErrAborted) matches it.
var ErrAborted = errors.New("mpi: world aborted because another rank failed")

// ErrDeadline is the sentinel matched by deadline-exceeded receive errors;
// the concrete error is a *DeadlineError.
var ErrDeadline = errors.New("mpi: deadline exceeded")

// RankFailedError poisons the operations of surviving ranks when a peer
// returned an error or panicked: instead of hanging in a collective the
// survivors fail fast with the identity and cause of the dead rank.
// It matches errors.Is(err, ErrAborted) for backward compatibility.
type RankFailedError struct {
	Rank  int   // world rank that failed
	Cause error // what it failed with (nil for a bare abort)
}

func (e *RankFailedError) Error() string {
	if e.Cause == nil {
		return fmt.Sprintf("mpi: rank %d failed; world aborted", e.Rank)
	}
	return fmt.Sprintf("mpi: rank %d failed (%v); world aborted", e.Rank, e.Cause)
}

func (e *RankFailedError) Unwrap() error { return e.Cause }

// FailedRank returns the world rank that failed. The method (rather than
// the Rank field) is the contract a plan-layer observer duck-types
// against, so internal/monitor can name the dead rank's plan position
// without importing this package.
func (e *RankFailedError) FailedRank() int { return e.Rank }

// Is makes errors.Is(err, ErrAborted) keep working for callers written
// against the pre-cause abort error.
func (e *RankFailedError) Is(target error) bool { return target == ErrAborted }

// DeadlineError reports a receive that waited past its deadline — the peer
// is silent (dead without having been detected, or stalled).
type DeadlineError struct {
	Rank    int // receiver's world rank
	Src     int // communicator rank waited on (AnySource allowed)
	Tag     int
	Timeout time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("mpi: rank %d recv(src=%d, tag=%d) exceeded %v deadline — peer silent", e.Rank, e.Src, e.Tag, e.Timeout)
}

func (e *DeadlineError) Is(target error) bool { return target == ErrDeadline }

// errTakeExpired is the internal marker the inbox returns on deadline; the
// Comm layer wraps it with rank/source detail.
var errTakeExpired = errors.New("mpi: take deadline expired")

type inbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	msgs  []envelope
	cause error // non-nil once the world aborted
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) put(e envelope) {
	ib.mu.Lock()
	ib.msgs = append(ib.msgs, e)
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

// abort poisons the inbox with the given cause; the first cause wins.
func (ib *inbox) abort(cause error) {
	ib.mu.Lock()
	if ib.cause == nil {
		ib.cause = cause
	}
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

// aborted returns the poison cause, if any.
func (ib *inbox) aborted() error {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.cause
}

// take removes and returns the first message matching (context, src, tag),
// blocking until one arrives, the world aborts, or the timeout (when
// positive) expires. The second result is the inbox depth remaining after
// the match — the queue-depth reading the message observer reports.
func (ib *inbox) take(context, src, tag int, timeout time.Duration) (envelope, int, error) {
	var expired bool
	if timeout > 0 {
		t := time.AfterFunc(timeout, func() {
			ib.mu.Lock()
			expired = true
			ib.mu.Unlock()
			ib.cond.Broadcast()
		})
		defer t.Stop()
	}
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		for i, e := range ib.msgs {
			if e.context != context {
				continue
			}
			if src != AnySource && e.Src != src {
				continue
			}
			if tag != AnyTag && e.Tag != tag {
				continue
			}
			ib.msgs = append(ib.msgs[:i], ib.msgs[i+1:]...)
			return e, len(ib.msgs), nil
		}
		if ib.cause != nil {
			return envelope{}, 0, ib.cause
		}
		if expired {
			return envelope{}, 0, errTakeExpired
		}
		ib.cond.Wait()
	}
}

// CommStats are cumulative per-rank message totals. They are scoped to the
// world rank: communicators created by Split accumulate into their world
// rank's totals. A message of m meta ints and d data floats counts as
// 8*(m+d) bytes.
type CommStats struct {
	MsgsSent   int64
	MsgsRecvd  int64
	BytesSent  int64
	BytesRecvd int64
}

// rankStats is the concurrent accumulator behind CommStats: ranks run as
// real goroutines, so totals must be atomic.
type rankStats struct {
	msgsSent   atomic.Int64
	msgsRecvd  atomic.Int64
	bytesSent  atomic.Int64
	bytesRecvd atomic.Int64
}

func msgBytes(meta []int, data []float64) int64 {
	return 8 * int64(len(meta)+len(data))
}

// World is a set of ranks that can exchange messages.
type World struct {
	size    int
	inboxes []*inbox
	stats   []rankStats
	tracer  *trace.Tracer
	msgObs  MsgObserver
	epoch   time.Time // wall-clock origin when no tracer supplies a clock

	mu          sync.Mutex
	nextContext int
}

// NewWorld creates a world with n ranks.
func NewWorld(n int) (*World, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive, got %d", n)
	}
	w := &World{size: n, inboxes: make([]*inbox, n), stats: make([]rankStats, n), nextContext: 1, epoch: time.Now()}
	for i := range w.inboxes {
		w.inboxes[i] = newInbox()
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// SetTracer attaches a tracer (wall-clocked: this runtime executes for
// real). Must be called before Run; a nil tracer disables instrumentation.
func (w *World) SetTracer(tr *trace.Tracer) { w.tracer = tr }

// SetMsgObserver attaches the per-message observer. Must be called before
// Run; a nil observer (the default) disables per-message telemetry at the
// cost of one pointer check per delivery.
func (w *World) SetMsgObserver(o MsgObserver) { w.msgObs = o }

// now reads the world clock: the tracer's clock when tracing (so message
// timestamps line up with trace spans), wall seconds since world creation
// otherwise.
func (w *World) now() float64 {
	if w.tracer.Enabled() {
		return w.tracer.Now()
	}
	return time.Since(w.epoch).Seconds()
}

// RankStats returns the cumulative totals of the given world rank.
func (w *World) RankStats(rank int) CommStats {
	s := &w.stats[rank]
	return CommStats{
		MsgsSent:   s.msgsSent.Load(),
		MsgsRecvd:  s.msgsRecvd.Load(),
		BytesSent:  s.bytesSent.Load(),
		BytesRecvd: s.bytesRecvd.Load(),
	}
}

// TotalStats sums RankStats over all ranks. In a quiescent world where
// every sent message was received, BytesSent == BytesRecvd.
func (w *World) TotalStats() CommStats {
	var t CommStats
	for r := 0; r < w.size; r++ {
		s := w.RankStats(r)
		t.MsgsSent += s.MsgsSent
		t.MsgsRecvd += s.MsgsRecvd
		t.BytesSent += s.BytesSent
		t.BytesRecvd += s.BytesRecvd
	}
	return t
}

// allocContext hands out a fresh context id. Contexts separate the message
// namespaces of communicators; Split relies on every member calling it in
// the same collective order, as MPI does.
func (w *World) allocContext() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	c := w.nextContext
	w.nextContext++
	return c
}

// abortAll poisons every inbox so blocked receives fail fast instead of
// deadlocking after a rank error. The cause names the failed rank; the
// first abort wins on each inbox.
func (w *World) abortAll(cause error) {
	if cause == nil {
		cause = ErrAborted
	}
	for _, ib := range w.inboxes {
		ib.abort(cause)
	}
}

// Run executes fn on every rank concurrently and waits for all of them.
// Each rank receives a Comm bound to the world communicator. The returned
// error joins the per-rank errors (nil when every rank succeeded).
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					w.abortAll(&RankFailedError{Rank: rank, Cause: fmt.Errorf("panic: %v", p)})
				}
			}()
			c := &Comm{world: w, context: 0, rank: rank, group: identityGroup(w.size)}
			errs[rank] = fn(c)
			if errs[rank] != nil {
				w.abortAll(&RankFailedError{Rank: rank, Cause: errs[rank]})
			}
		}(r)
	}
	wg.Wait()
	var nonNil []error
	for r, e := range errs {
		if e != nil {
			nonNil = append(nonNil, fmt.Errorf("rank %d: %w", r, e))
		}
	}
	return errors.Join(nonNil...)
}

func identityGroup(n int) []int {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return g
}

// Comm is a communicator: a rank's endpoint within a group of ranks
// sharing a message context.
type Comm struct {
	world   *World
	context int
	rank    int   // rank within this communicator
	group   []int // communicator rank -> world rank
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.group) }

// Stats returns the caller's cumulative message totals (world-rank scoped;
// see CommStats).
func (c *Comm) Stats() CommStats { return c.world.RankStats(c.group[c.rank]) }

// track is the caller's trace track: one row per world rank.
func (c *Comm) track() string { return fmt.Sprintf("rank%d", c.group[c.rank]) }

// opName maps a tag to the trace span name of the operation blocking on it.
func opName(tag int) string {
	switch tag {
	case collBcast:
		return "bcast"
	case collGather:
		return "gather"
	case collScatter:
		return "scatter"
	case collBarrierUp, collBarrierDn:
		return "barrier"
	case collReduce:
		return "allreduce"
	}
	return "recv"
}

// Send delivers a message to rank dst of this communicator. Meta and Data
// are copied, so the caller may immediately reuse its buffers. Tags must be
// non-negative.
func (c *Comm) Send(dst, tag int, meta []int, data []float64) error {
	if dst < 0 || dst >= len(c.group) {
		return fmt.Errorf("mpi: send to rank %d out of range [0,%d)", dst, len(c.group))
	}
	if tag < 0 {
		return fmt.Errorf("mpi: negative tag %d", tag)
	}
	c.send(dst, tag, meta, data)
	return nil
}

// SendDeadline is Send with failure detection: sends in this runtime never
// block (mailboxes are unbounded), so the deadline's job is to refuse to
// enqueue onto a world that already aborted — returning the failed rank's
// *RankFailedError instead of silently feeding a dead peer. The timeout
// parameter is accepted for interface symmetry with RecvDeadline.
func (c *Comm) SendDeadline(dst, tag int, meta []int, data []float64, timeout time.Duration) error {
	if dst < 0 || dst >= len(c.group) {
		return fmt.Errorf("mpi: send to rank %d out of range [0,%d)", dst, len(c.group))
	}
	if tag < 0 {
		return fmt.Errorf("mpi: negative tag %d", tag)
	}
	if cause := c.world.inboxes[c.group[dst]].aborted(); cause != nil {
		return cause
	}
	c.send(dst, tag, meta, data)
	return nil
}

func (c *Comm) send(dst, tag int, meta []int, data []float64) {
	e := envelope{
		context:  c.context,
		worldSrc: c.group[c.rank],
		Message:  Message{Src: c.rank, Tag: tag},
	}
	if c.world.msgObs != nil {
		e.sentAt = c.world.now()
	}
	if meta != nil {
		e.Meta = append([]int(nil), meta...)
	}
	if data != nil {
		e.Data = append([]float64(nil), data...)
	}
	c.world.inboxes[c.group[dst]].put(e)
	bytes := msgBytes(meta, data)
	st := &c.world.stats[c.group[c.rank]]
	st.msgsSent.Add(1)
	st.bytesSent.Add(bytes)
	tr := c.world.tracer
	if reg := tr.Counters(); reg != nil {
		reg.Inc("mpi.msgs")
		reg.Add("mpi.bytes", float64(bytes))
	}
	if tr.Detail() {
		tr.Instant(c.track(), "mpi", "send", tr.Now(),
			trace.Arg{Key: "dst", Val: float64(c.group[dst])},
			trace.Arg{Key: "bytes", Val: float64(bytes)})
	}
}

// take blocks on the caller's inbox for a message from communicator rank
// src with the given tag, accounting stats and emitting the blocking span.
// All receive paths — point-to-point and collectives — come through here.
func (c *Comm) take(src, tag int) (Message, error) {
	return c.takeTimeout(src, tag, 0)
}

func (c *Comm) takeTimeout(src, tag int, timeout time.Duration) (Message, error) {
	tr := c.world.tracer
	var t0 float64
	if tr.Enabled() {
		t0 = tr.Now()
	}
	e, depth, err := c.world.inboxes[c.group[c.rank]].take(c.context, src, tag, timeout)
	if err != nil {
		if err == errTakeExpired {
			err = &DeadlineError{Rank: c.group[c.rank], Src: src, Tag: tag, Timeout: timeout}
		}
		return e.Message, err
	}
	m := e.Message
	st := &c.world.stats[c.group[c.rank]]
	st.msgsRecvd.Add(1)
	st.bytesRecvd.Add(msgBytes(m.Meta, m.Data))
	if tr.Enabled() {
		tr.Span(c.track(), "mpi", opName(tag), t0, tr.Now(),
			trace.Arg{Key: "bytes", Val: float64(msgBytes(m.Meta, m.Data))})
	}
	if obs := c.world.msgObs; obs != nil {
		obs.OnMessage(e.worldSrc, c.group[c.rank], m.Tag,
			msgBytes(m.Meta, m.Data), e.sentAt, c.world.now(), depth)
	}
	return m, nil
}

// Recv blocks until a message matching (src, tag) arrives. src may be
// AnySource and tag may be AnyTag.
func (c *Comm) Recv(src, tag int) (Message, error) {
	return c.RecvDeadline(src, tag, 0)
}

// RecvDeadline is Recv with a deadline: when timeout is positive and no
// matching message arrives in time, it fails with a *DeadlineError
// (errors.Is(err, ErrDeadline)) instead of blocking forever on a silent
// peer. A zero timeout waits indefinitely.
func (c *Comm) RecvDeadline(src, tag int, timeout time.Duration) (Message, error) {
	if src != AnySource && (src < 0 || src >= len(c.group)) {
		return Message{}, fmt.Errorf("mpi: recv from rank %d out of range [0,%d)", src, len(c.group))
	}
	if tag != AnyTag && tag < 0 {
		return Message{}, fmt.Errorf("mpi: negative tag %d", tag)
	}
	return c.takeTimeout(src, tag, timeout)
}

// Collectives use a private tag space carved out of the negative integers so
// concurrent user traffic (tags ≥ 0) cannot interfere. Like MPI, all ranks
// of a communicator must call collectives in the same order; messages
// between a fixed (sender, receiver, tag) pair are delivered FIFO, which
// makes fixed per-kind tags safe for the tree and star patterns below.
const (
	collBcast     = -2
	collGather    = -3
	collScatter   = -4
	collBarrierUp = -5
	collBarrierDn = -6
	collReduce    = -7
)

// Bcast broadcasts data from root to every rank; every rank returns its own
// copy of the broadcast slice. Implemented as a binary tree rooted at root,
// matching the log(p) shape of the cost models in §4.3.
func (c *Comm) Bcast(root int, data []float64) ([]float64, error) {
	if root < 0 || root >= len(c.group) {
		return nil, fmt.Errorf("mpi: bcast root %d out of range", root)
	}
	n := len(c.group)
	vr := (c.rank - root + n) % n // rotate so the root is virtual rank 0
	if vr != 0 {
		parentVirtual := (vr - 1) / 2
		parent := (parentVirtual + root) % n
		m, err := c.take(parent, collBcast)
		if err != nil {
			return nil, err
		}
		data = m.Data
	}
	for _, childVirtual := range []int{2*vr + 1, 2*vr + 2} {
		if childVirtual < n {
			c.send((childVirtual+root)%n, collBcast, nil, data)
		}
	}
	return data, nil
}

// Gather collects each rank's data at root. Root receives a slice indexed
// by rank; other ranks receive nil.
func (c *Comm) Gather(root int, data []float64) ([][]float64, error) {
	if root < 0 || root >= len(c.group) {
		return nil, fmt.Errorf("mpi: gather root %d out of range", root)
	}
	if c.rank != root {
		c.send(root, collGather, nil, data)
		return nil, nil
	}
	out := make([][]float64, len(c.group))
	out[root] = append([]float64(nil), data...)
	for i := 0; i < len(c.group); i++ {
		if i == root {
			continue
		}
		m, err := c.take(i, collGather)
		if err != nil {
			return nil, err
		}
		out[i] = m.Data
	}
	return out, nil
}

// Scatter distributes parts[i] from root to rank i; every rank returns its
// part. Only root may pass a non-nil parts slice, which must have exactly
// one entry per rank.
func (c *Comm) Scatter(root int, parts [][]float64) ([]float64, error) {
	if root < 0 || root >= len(c.group) {
		return nil, fmt.Errorf("mpi: scatter root %d out of range", root)
	}
	if c.rank == root {
		if len(parts) != len(c.group) {
			return nil, fmt.Errorf("mpi: scatter needs %d parts, got %d", len(c.group), len(parts))
		}
		for i, p := range parts {
			if i == root {
				continue
			}
			c.send(i, collScatter, nil, p)
		}
		return append([]float64(nil), parts[root]...), nil
	}
	m, err := c.take(root, collScatter)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// Barrier blocks until every rank of the communicator has entered it.
func (c *Comm) Barrier() error {
	if c.rank != 0 {
		c.send(0, collBarrierUp, nil, nil)
		_, err := c.take(0, collBarrierDn)
		return err
	}
	for i := 1; i < len(c.group); i++ {
		if _, err := c.take(i, collBarrierUp); err != nil {
			return err
		}
	}
	for i := 1; i < len(c.group); i++ {
		c.send(i, collBarrierDn, nil, nil)
	}
	return nil
}

// AllreduceSum sums element-wise across ranks; every rank returns the total.
// The input slices must share a length.
func (c *Comm) AllreduceSum(data []float64) ([]float64, error) {
	if c.rank != 0 {
		c.send(0, collReduce, nil, data)
	} else {
		sum := append([]float64(nil), data...)
		for i := 1; i < len(c.group); i++ {
			m, err := c.take(i, collReduce)
			if err != nil {
				return nil, err
			}
			if len(m.Data) != len(sum) {
				return nil, fmt.Errorf("mpi: allreduce length mismatch: rank %d sent %d, want %d", i, len(m.Data), len(sum))
			}
			for j, v := range m.Data {
				sum[j] += v
			}
		}
		data = sum
	}
	return c.Bcast(0, data)
}

// Split partitions the communicator by color, ordering ranks within each
// new communicator by (key, old rank), and returns the caller's new
// communicator — MPI_Comm_split semantics. A negative color returns nil
// (the rank opts out) but the rank must still call Split.
func (c *Comm) Split(color, key int) (*Comm, error) {
	// Gather (color, key) pairs at rank 0 of this communicator.
	pair := []float64{float64(color), float64(key)}
	all, err := c.Gather(0, pair)
	if err != nil {
		return nil, err
	}
	// Rank 0 assigns one fresh context per distinct non-negative color and
	// broadcasts the (context, color sorted membership) table.
	var table []float64 // triples: worldRankIdx, color, context
	if c.rank == 0 {
		contexts := map[int]int{}
		colors := make([]int, 0, len(all))
		for _, p := range all {
			col := int(p[0])
			if col >= 0 {
				if _, ok := contexts[col]; !ok {
					colors = append(colors, col)
				}
				contexts[col] = 0
			}
		}
		sort.Ints(colors)
		for _, col := range colors {
			contexts[col] = c.world.allocContext()
		}
		for r, p := range all {
			col := int(p[0])
			ctx := -1
			if col >= 0 {
				ctx = contexts[col]
			}
			table = append(table, float64(r), p[0], p[1], float64(ctx))
		}
	}
	table, err = c.Bcast(0, table)
	if err != nil {
		return nil, err
	}
	if color < 0 {
		return nil, nil
	}
	// Build the member list of my color ordered by (key, old rank).
	type member struct{ oldRank, key int }
	var members []member
	myContext := -1
	for i := 0; i+3 < len(table); i += 4 {
		r, col, k, ctx := int(table[i]), int(table[i+1]), int(table[i+2]), int(table[i+3])
		if col == color {
			members = append(members, member{oldRank: r, key: k})
			myContext = ctx
		}
	}
	sort.Slice(members, func(a, b int) bool {
		if members[a].key != members[b].key {
			return members[a].key < members[b].key
		}
		return members[a].oldRank < members[b].oldRank
	})
	group := make([]int, len(members))
	newRank := -1
	for i, m := range members {
		group[i] = c.group[m.oldRank]
		if m.oldRank == c.rank {
			newRank = i
		}
	}
	if newRank < 0 || myContext < 0 {
		return nil, fmt.Errorf("mpi: split bookkeeping failed for rank %d color %d", c.rank, color)
	}
	return &Comm{world: c.world, context: myContext, rank: newRank, group: group}, nil
}
