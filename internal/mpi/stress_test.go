package mpi

import (
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestAllToAllStorm exercises heavy concurrent traffic: every rank sends a
// message to every other rank with a per-pair tag, and receives one from
// everyone. Nothing may be lost, duplicated, or mismatched.
func TestAllToAllStorm(t *testing.T) {
	const n = 12
	const rounds = 20
	run(t, n, func(c *Comm) error {
		me := c.Rank()
		for r := 0; r < rounds; r++ {
			for dst := 0; dst < n; dst++ {
				if dst == me {
					continue
				}
				payload := []float64{float64(me*1000 + r)}
				if err := c.Send(dst, r, []int{me}, payload); err != nil {
					return err
				}
			}
			seen := map[int]bool{}
			for i := 0; i < n-1; i++ {
				m, err := c.Recv(AnySource, r)
				if err != nil {
					return err
				}
				src := m.Meta[0]
				if seen[src] {
					return fmt.Errorf("round %d: duplicate from %d", r, src)
				}
				seen[src] = true
				if m.Data[0] != float64(src*1000+r) {
					return fmt.Errorf("round %d: bad payload from %d: %g", r, src, m.Data[0])
				}
			}
		}
		return nil
	})
}

// TestConcurrentRecvSameRank exercises the helper-thread pattern: two
// goroutines of the same rank receive concurrently on disjoint tag ranges.
func TestConcurrentRecvSameRank(t *testing.T) {
	const msgs = 50
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := c.Send(1, i, nil, []float64{float64(i)}); err != nil {
					return err
				}
				if err := c.Send(1, 1000+i, nil, []float64{float64(1000 + i)}); err != nil {
					return err
				}
			}
			return nil
		}
		var lowSum, highSum int64
		done := make(chan error, 2)
		go func() {
			for i := 0; i < msgs; i++ {
				m, err := c.Recv(0, i)
				if err != nil {
					done <- err
					return
				}
				atomic.AddInt64(&lowSum, int64(m.Data[0]))
			}
			done <- nil
		}()
		go func() {
			for i := 0; i < msgs; i++ {
				m, err := c.Recv(0, 1000+i)
				if err != nil {
					done <- err
					return
				}
				atomic.AddInt64(&highSum, int64(m.Data[0]))
			}
			done <- nil
		}()
		for i := 0; i < 2; i++ {
			if err := <-done; err != nil {
				return err
			}
		}
		wantLow := int64(msgs * (msgs - 1) / 2)
		wantHigh := int64(1000*msgs + msgs*(msgs-1)/2)
		if lowSum != wantLow || highSum != wantHigh {
			return fmt.Errorf("sums %d/%d, want %d/%d", lowSum, highSum, wantLow, wantHigh)
		}
		return nil
	})
}

// TestQuickScatterGatherRoundTrip checks scatter → local transform →
// gather against the direct computation for random shapes.
func TestQuickScatterGatherRoundTrip(t *testing.T) {
	f := func(sizeRaw uint8, seed int64) bool {
		n := int(sizeRaw%6) + 2
		w, err := NewWorld(n)
		if err != nil {
			return false
		}
		parts := make([][]float64, n)
		for i := range parts {
			parts[i] = []float64{float64(seed%100) + float64(i)}
		}
		var result [][]float64
		err = w.Run(func(c *Comm) error {
			var in [][]float64
			if c.Rank() == 0 {
				in = parts
			}
			part, err := c.Scatter(0, in)
			if err != nil {
				return err
			}
			part[0] *= 2
			all, err := c.Gather(0, part)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				result = all
			}
			return nil
		})
		if err != nil {
			return false
		}
		for i := range parts {
			if result[i][0] != parts[i][0]*2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestBcastLargePayload moves a multi-megabyte broadcast through the tree.
func TestBcastLargePayload(t *testing.T) {
	const size = 1 << 18 // 256k float64 = 2 MiB
	run(t, 5, func(c *Comm) error {
		var data []float64
		if c.Rank() == 2 {
			data = make([]float64, size)
			for i := range data {
				data[i] = float64(i % 977)
			}
		}
		got, err := c.Bcast(2, data)
		if err != nil {
			return err
		}
		if len(got) != size {
			return fmt.Errorf("rank %d got %d values", c.Rank(), len(got))
		}
		for i := 0; i < size; i += 7919 {
			if got[i] != float64(i%977) {
				return fmt.Errorf("rank %d corrupted at %d", c.Rank(), i)
			}
		}
		return nil
	})
}

// TestNestedSplit splits a sub-communicator again; contexts must stay
// isolated through both levels.
func TestNestedSplit(t *testing.T) {
	run(t, 8, func(c *Comm) error {
		half, err := c.Split(c.Rank()/4, c.Rank())
		if err != nil {
			return err
		}
		quarter, err := half.Split(half.Rank()/2, half.Rank())
		if err != nil {
			return err
		}
		if quarter.Size() != 2 {
			return fmt.Errorf("quarter size %d", quarter.Size())
		}
		sum, err := quarter.AllreduceSum([]float64{float64(c.Rank())})
		if err != nil {
			return err
		}
		// The two world ranks in my quarter are consecutive.
		base := (c.Rank() / 2) * 2
		if sum[0] != float64(base+base+1) {
			return fmt.Errorf("rank %d: quarter sum %g", c.Rank(), sum[0])
		}
		return nil
	})
}
