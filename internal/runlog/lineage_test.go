package runlog

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"
)

// TestInterruptedOutcome lands a session with the interrupt sentinel — the
// graceful-shutdown path minus the signal itself — and checks the archived
// record reads "interrupted" with no error message.
func TestInterruptedOutcome(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs, "senkf-test")
	if err := fs.Parse([]string{"-archive", dir}); err != nil {
		t.Fatal(err)
	}
	s, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	s.OnInterrupt(func() { fired = true })
	if err := s.Finish(ErrInterrupted); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("OnInterrupt hook ran on a non-signal Finish")
	}

	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := a.Load(s.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Manifest.Outcome != "interrupted" {
		t.Fatalf("outcome = %q, want interrupted", rec.Manifest.Outcome)
	}
	if rec.Manifest.Error != "" {
		t.Fatalf("interrupted run carries error %q", rec.Manifest.Error)
	}
	// A wrapped sentinel still maps.
	if !errors.Is(errors.Join(ErrInterrupted), ErrInterrupted) {
		t.Fatal("sentinel not matchable when wrapped")
	}
}

// TestLineageInListAndDiff archives a parent and its resumed child and
// checks the lineage surfaces in the summary, the list table, and the diff.
func TestLineageInListAndDiff(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	parent := &Manifest{
		RunID: "senkf-cycle-20260101T000000Z-aaaa1111", Binary: "senkf-cycle",
		Start: "2026-01-01T00:00:00Z", Outcome: "error", Error: "killed",
		Config: map[string]string{"members": "20"},
	}
	child := &Manifest{
		RunID: "senkf-cycle-20260101T010000Z-bbbb2222", Binary: "senkf-cycle",
		Start: "2026-01-01T01:00:00Z", Outcome: "ok",
		Config:      map[string]string{"members": "26"},
		ParentRunID: parent.RunID, ResumeCycle: 3,
	}
	for _, m := range []*Manifest{parent, child} {
		if _, err := a.WriteRecord(m, nil); err != nil {
			t.Fatal(err)
		}
	}

	rows, err := a.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[1].Parent != parent.RunID || rows[1].ResumeCycle != 3 {
		t.Fatalf("child summary lineage = %q @ %d", rows[1].Parent, rows[1].ResumeCycle)
	}
	var buf bytes.Buffer
	if err := WriteListTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "^aaaa1111@c3") {
		t.Errorf("list table missing lineage column:\n%s", buf.String())
	}

	d, err := a.DiffRuns(parent.RunID, child.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if d.Lineage != "b-resumes-a" || d.ResumeCycle != 3 {
		t.Fatalf("diff lineage = %q @ %d", d.Lineage, d.ResumeCycle)
	}
	if len(d.Config) != 1 || d.Config[0].Key != "members" {
		t.Fatalf("config deltas = %+v", d.Config)
	}
	buf.Reset()
	if err := d.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "b resumed from a's checkpoint at cycle 3") {
		t.Errorf("diff text missing lineage:\n%s", buf.String())
	}

	// Reversed argument order flips the direction.
	rd, err := a.DiffRuns(child.RunID, parent.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Lineage != "a-resumes-b" {
		t.Fatalf("reversed diff lineage = %q", rd.Lineage)
	}
}
