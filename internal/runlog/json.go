// Small encoding helpers shared by the session and query layers.

package runlog

import (
	"bytes"
	"encoding/json"

	"senkf/internal/trace"
)

func jsonMarshal(v any) ([]byte, error) { return json.Marshal(v) }

// jsonMarshalIndent renders v the way every archived JSON file is stored:
// two-space indent with a trailing newline.
func jsonMarshalIndent(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// chromeBytes renders events as Chrome trace-event JSON.
func chromeBytes(events []trace.Event) ([]byte, error) {
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, events); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
