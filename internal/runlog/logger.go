// Structured logging: one log/slog text logger per invocation, stamped
// with the run ID, replacing the binaries' ad-hoc stderr prints so log
// lines correlate with traces, metrics and archive records on one key.

package runlog

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value onto a slog level. Empty means
// info; "off" disables logging entirely (used with a Discard handler).
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("runlog: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// NewLogger returns a text slog.Logger on w at the given level, with
// every line carrying the run ID.
func NewLogger(w io.Writer, level slog.Level, runID string) *slog.Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(h).With("run_id", runID)
}
