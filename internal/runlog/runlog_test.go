package runlog

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"senkf/internal/costmodel"
	"senkf/internal/report"
	"senkf/internal/trace"
	"senkf/internal/trace/critpath"
)

func TestNewRunIDDeterministic(t *testing.T) {
	start := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	entropy := bytes.NewReader([]byte{0xde, 0xad, 0xbe, 0xef})
	got := NewRunID("senkf-run", start, entropy)
	if want := "run-20260102T030405Z-deadbeef"; got != want {
		t.Fatalf("NewRunID = %q, want %q", got, want)
	}
	// Non-senkf binary names pass through; empty short falls back.
	if got := NewRunID("senkf-", start, bytes.NewReader([]byte{1, 2, 3, 4})); !strings.HasPrefix(got, "run-") {
		t.Errorf("empty short name should fall back to run-: %q", got)
	}
}

// TestGoldenManifest pins the manifest.json wire format: schema version,
// field names, content addressing, and the two-space-indent rendering.
// Any change here is a ledger format change and must bump ManifestSchema.
func TestGoldenManifest(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{
		RunID:     "run-20260102T030405Z-deadbeef",
		Binary:    "senkf-run",
		Start:     "2026-01-02T03:04:05Z",
		DurationS: 1.5,
		Substrate: "real",
		Config:    map[string]string{"algo": "senkf", "monitor": "true"},
		Spec: &SpecInfo{
			Algorithm: "S-EnKF", NSdx: 4, NSdy: 2, N: 16, L: 4, NCg: 2,
			Reader: "staggered", WorldSize: 12,
		},
		PlanHash: "sha256:0123",
		Outcome:  "ok",
		Runtime:  1.25,
		Verdicts: 3,
	}
	if _, err := a.WriteRecord(m, map[string][]byte{CountersFile: []byte("{}\n")}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(a.RunDir(m.RunID), ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "schema": 1,
  "run_id": "run-20260102T030405Z-deadbeef",
  "binary": "senkf-run",
  "start_utc": "2026-01-02T03:04:05Z",
  "duration_s": 1.5,
  "substrate": "real",
  "config": {
    "algo": "senkf",
    "monitor": "true"
  },
  "spec": {
    "algorithm": "S-EnKF",
    "nsdx": 4,
    "nsdy": 2,
    "n": 16,
    "l": 4,
    "ncg": 2,
    "reader": "staggered",
    "world_size": 12
  },
  "plan_hash": "sha256:0123",
  "outcome": "ok",
  "runtime_s": 1.25,
  "verdicts": 3,
  "files": {
    "counters.json": "sha256:ca3d163bab055381827226140568f3bef7eaac187cebd76878e0b63e9e442356"
  }
}
`
	if string(raw) != golden {
		t.Errorf("manifest.json drifted from the golden rendering:\ngot:\n%s\nwant:\n%s", raw, golden)
	}
}

// TestRoundTrip pins that a written record loads back bit-identically and
// that content addressing catches corruption.
func TestRoundTrip(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{RunID: "run-1", Binary: "senkf-run", Start: "2026-01-02T03:04:05Z", Outcome: "ok"}
	payload := []byte(`{"counter/io/read bytes/value": 42}` + "\n")
	dir, err := a.WriteRecord(m, map[string][]byte{CountersFile: payload})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := a.Load("run-1")
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.RawManifest(), want) {
		t.Error("RawManifest differs from the stored manifest bytes")
	}
	got, err := rec.ReadFile(CountersFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("ReadFile = %q, want %q", got, payload)
	}
	c, err := rec.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if c["counter/io/read bytes/value"] != 42 {
		t.Errorf("Counters round trip = %v", c)
	}

	// Corrupt the attached file: the content address must catch it.
	if err := os.WriteFile(filepath.Join(dir, CountersFile), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec2, err := a.Load("run-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec2.ReadFile(CountersFile); err == nil {
		t.Error("ReadFile accepted a corrupted attached file")
	}
}

func TestWriteRecordRejectsBadNames(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{ManifestFile, "../escape.json", "/abs.json"} {
		m := &Manifest{RunID: "run-x", Outcome: "ok"}
		if _, err := a.WriteRecord(m, map[string][]byte{name: []byte("x")}); err == nil {
			t.Errorf("WriteRecord accepted attached file name %q", name)
		}
	}
}

func TestResolve(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"run-aaa1", "run-aaa2", "cycle-bbb"} {
		if _, err := a.WriteRecord(&Manifest{RunID: id, Outcome: "ok"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := a.Resolve("cycle"); err != nil || got != "cycle-bbb" {
		t.Errorf("Resolve(cycle) = %q, %v", got, err)
	}
	if got, err := a.Resolve("run-aaa1"); err != nil || got != "run-aaa1" {
		t.Errorf("Resolve(exact) = %q, %v", got, err)
	}
	if _, err := a.Resolve("run-aaa"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("Resolve(ambiguous) err = %v", err)
	}
	if _, err := a.Resolve("nope"); err == nil {
		t.Errorf("Resolve(miss) err = nil")
	}
}

// testReport builds a minimal but well-formed run report for query tests.
func testReport(runtime, eff float64) *report.Report {
	return &report.Report{
		Schema:             report.Schema,
		Runtime:            runtime,
		PipelineEfficiency: eff,
		Stages: []critpath.StageOverlap{
			{Stage: 0, IOBusy: 0.5, Hidden: 0.4, Efficiency: 0.8},
		},
		CriticalPath: report.CritPathSummary{
			Attribution: map[string]float64{"comp/compute": runtime * 0.7, "io/read": runtime * 0.3},
		},
		Model: &report.ModelSection{
			Drift: costmodel.DriftReport{
				Terms: []costmodel.TermDrift{
					{Term: "t_read", Predicted: 1, Measured: runtime * 0.3, RelErr: runtime*0.3 - 1},
					{Term: "t_total", Predicted: 2, Measured: runtime, RelErr: runtime/2 - 1},
				},
			},
		},
	}
}

func archiveRun(t *testing.T, a *Archive, id, binary, start string, runtime float64, eff float64, counters map[string]float64) {
	t.Helper()
	files := map[string][]byte{}
	rep, err := json.Marshal(testReport(runtime, eff))
	if err != nil {
		t.Fatal(err)
	}
	files[ReportFile] = rep
	if counters != nil {
		data, err := json.Marshal(counters)
		if err != nil {
			t.Fatal(err)
		}
		files[CountersFile] = data
	}
	m := &Manifest{
		RunID: id, Binary: binary, Start: start, Outcome: "ok", Runtime: runtime,
		Spec:     &SpecInfo{Algorithm: "S-EnKF"},
		PlanHash: "sha256:feed",
		Config:   map[string]string{"algo": "senkf", "members": "16"},
	}
	if _, err := a.WriteRecord(m, files); err != nil {
		t.Fatal(err)
	}
}

func TestListFilterAndOrder(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	archiveRun(t, a, "run-2", "senkf-run", "2026-01-02T00:00:00Z", 2.0, 0.9, nil)
	archiveRun(t, a, "run-1", "senkf-run", "2026-01-01T00:00:00Z", 1.0, 0.9, nil)
	if _, err := a.WriteRecord(&Manifest{RunID: "gen-1", Binary: "senkf-gen", Start: "2026-01-03T00:00:00Z", Outcome: "ok"}, nil); err != nil {
		t.Fatal(err)
	}

	all, err := a.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0].RunID != "run-1" || all[2].RunID != "gen-1" {
		t.Fatalf("List order = %+v", all)
	}
	runs, err := a.List(Filter{Binary: "senkf-run", Algorithm: "S-EnKF"})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("filtered List = %+v", runs)
	}
	var buf bytes.Buffer
	if err := WriteListTable(&buf, runs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "run-1") || !strings.Contains(buf.String(), "2 run(s)") {
		t.Errorf("list table:\n%s", buf.String())
	}
}

func TestDiffRuns(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	archiveRun(t, a, "run-a", "senkf-run", "2026-01-01T00:00:00Z", 1.0, 0.9,
		map[string]float64{"counter/io/reads/value": 100, "gauge/q/value": 5})
	archiveRun(t, a, "run-b", "senkf-run", "2026-01-02T00:00:00Z", 2.0, 0.8,
		map[string]float64{"counter/io/reads/value": 160, "gauge/q/value": 5})

	d, err := a.DiffRuns("run-a", "run-b")
	if err != nil {
		t.Fatal(err)
	}
	if !d.PlanEqual {
		t.Error("equal plan hashes should report PlanEqual")
	}
	if len(d.Config) != 0 {
		t.Errorf("identical configs should produce no deltas: %+v", d.Config)
	}
	if d.Efficiency == nil || d.Efficiency.Delta >= 0 {
		t.Errorf("pipeline efficiency delta = %+v", d.Efficiency)
	}
	if len(d.Drift) != 2 {
		t.Errorf("drift terms = %+v", d.Drift)
	}
	if len(d.Counters) != 1 || d.Counters[0].Name != "counter/io/reads/value" || d.Counters[0].Delta != 60 {
		t.Errorf("counter deltas = %+v", d.Counters)
	}
	if len(d.CriticalPath) != 2 {
		t.Errorf("critical path deltas = %+v", d.CriticalPath)
	}
	var buf bytes.Buffer
	if err := d.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plan: identical", "runtime: 1s -> 2s", "t_total", "counter/io/reads/value"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("diff text missing %q:\n%s", want, buf.String())
		}
	}

	// Prefix resolution through DiffRuns.
	if _, err := a.DiffRuns("run-a", "run-"); err == nil {
		t.Error("ambiguous prefix should error")
	}
}

func TestTrendRegression(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Three stable runs, then one 2x slower: runtime (lower is better)
	// must flag, efficiency-style metrics must use the opposite direction.
	archiveRun(t, a, "run-1", "senkf-run", "2026-01-01T00:00:00Z", 1.00, 0.9, nil)
	archiveRun(t, a, "run-2", "senkf-run", "2026-01-02T00:00:00Z", 1.02, 0.9, nil)
	archiveRun(t, a, "run-3", "senkf-run", "2026-01-03T00:00:00Z", 0.98, 0.9, nil)
	archiveRun(t, a, "run-4", "senkf-run", "2026-01-04T00:00:00Z", 2.00, 0.3, nil)

	tr, err := a.TrendMetric("runtime", Filter{}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != 4 || !tr.Regressed || tr.HigherBetter {
		t.Errorf("runtime trend = %+v", tr)
	}
	if tr.Baseline != 1.0 {
		t.Errorf("baseline = %g, want median 1.0", tr.Baseline)
	}

	eff, err := a.TrendMetric("pipeline-efficiency", Filter{}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !eff.HigherBetter || !eff.Regressed {
		t.Errorf("efficiency trend = %+v", eff)
	}

	stage, err := a.TrendMetric("stage0-efficiency", Filter{}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(stage.Points) != 4 || stage.Regressed {
		t.Errorf("stage trend = %+v", stage)
	}

	if _, err := a.TrendMetric("no-such-metric", Filter{}, 0.15); err == nil {
		t.Error("unknown metric should error")
	}

	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Errorf("trend text missing verdict:\n%s", buf.String())
	}
}

func TestFlagsValidate(t *testing.T) {
	newFlags := func(args ...string) (*Flags, error) {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		f := Register(fs, "senkf-test")
		if err := fs.Parse(args); err != nil {
			return nil, err
		}
		return f, f.validate()
	}
	if _, err := newFlags("-metrics-addr", "localhost:1"); err == nil {
		t.Error("-metrics-addr without -monitor should fail validation")
	}
	if _, err := newFlags("-flight-recorder", "x.json"); err == nil {
		t.Error("-flight-recorder without -monitor should fail validation")
	}
	if _, err := newFlags("-log-level", "loud"); err == nil {
		t.Error("bad -log-level should fail validation")
	}
	f, err := newFlags("-monitor", "-metrics-addr", "localhost:1", "-trace", "t.json")
	if err != nil {
		t.Fatalf("valid combination rejected: %v", err)
	}
	cfg := f.config()
	if cfg["monitor"] != "true" || cfg["trace"] != "t.json" {
		t.Errorf("config snapshot = %v", cfg)
	}
}

func TestFlattenSnapshot(t *testing.T) {
	reg := trace.NewRegistry()
	reg.Inc("io/reads")
	reg.Add("io/bytes", 7)
	got := FlattenSnapshot(reg.Snapshot())
	if got["counter/io/reads/value"] != 1 || got["counter/io/bytes/value"] != 7 {
		t.Errorf("FlattenSnapshot = %v", got)
	}
}
