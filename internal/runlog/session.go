// Session: one binary invocation's observability context. Start() mints
// the run ID, builds the logger and the sink set the flags asked for
// (trace buffer, monitor tee, counter registry, pprof/metrics servers),
// and Finish() lands everything — trace file, counter dumps, monitor
// summary, and the archived run record when -archive is set.

package runlog

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"senkf/internal/monitor"
	"senkf/internal/plan"
	"senkf/internal/profiling"
	"senkf/internal/report"
	"senkf/internal/runtimeobs"
	"senkf/internal/trace"
	"senkf/internal/wire"
)

// ErrInterrupted is the run outcome when SIGINT/SIGTERM lands gracefully:
// the session finishes (trace flushed, record archived with outcome
// "interrupted") before the process exits with the conventional 128+signal
// status.
var ErrInterrupted = errors.New("runlog: interrupted by signal")

// Session is the per-invocation observability context.
type Session struct {
	// RunID is this invocation's run-ledger identity.
	RunID string
	// Log is the run's structured logger (every line carries RunID).
	Log *slog.Logger
	// Registry is the run's counter/gauge/histogram registry.
	Registry *trace.Registry
	// Tracer is the configured tracer — nil when no sink or counter
	// consumer was requested, exactly like the hand-wired binaries.
	Tracer *trace.Tracer
	// Monitor is the live monitor, nil without -monitor.
	Monitor *monitor.Monitor
	// Wire is the wire-telemetry collector, nil without -wire. It
	// implements plan.MsgObserver and, structurally, the substrate observer
	// interfaces (mpi.MsgObserver, parfs.ReadObserver) — binaries attach it
	// to Problem.Msgs / schedule Config.Msgs+Reads.
	Wire *wire.Collector

	flags   *Flags
	start   time.Time
	buf     *trace.Buffer
	archive *Archive

	profSrv    *profiling.Server
	metricsSrv *profiling.Server

	sampler *runtimeobs.Sampler
	labels  *runtimeobs.LabelSet
	cpuStop func() []byte // whole-run CPU capture, nil without -capture-profile

	algorithm string
	substrate string
	spec      *SpecInfo
	planHash  string
	faults    []byte
	notes     map[string]string

	mu          sync.Mutex
	cycles      []monitor.CycleSample
	profiles    map[string][]byte
	captured    bool
	profWG      sync.WaitGroup
	finished    bool
	parentRun   string
	resumeCycle int
	onInterrupt []func()
	sigCh       chan os.Signal
}

// Start validates the flag combination and builds the session: run ID,
// logger, archive, trace buffer, monitor tee, tracer, and the pprof and
// metrics servers. Call it once, after flag parsing.
func (f *Flags) Start() (*Session, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	now := time.Now()
	s := &Session{
		RunID:    NewRunID(f.binary, now, nil),
		Registry: trace.NewRegistry(),
		flags:    f,
		start:    now,
		notes:    map[string]string{},
		profiles: map[string][]byte{},
	}
	level, _ := ParseLevel(strOf(f.logLevel))
	s.Log = NewLogger(os.Stderr, level, s.RunID).With("binary", f.binary)

	if dir := f.ArchiveDir(); dir != "" {
		a, err := Open(dir)
		if err != nil {
			return nil, err
		}
		s.archive = a
	}

	// The monitor attaches as the secondary side of a tee: the primary
	// Chrome-trace sink (when any) is untouched, and an unmonitored run
	// executes the identical code path with a nil monitor.
	var primary trace.Sink
	if f.TraceOut() != "" || s.archive != nil {
		s.buf = trace.NewBuffer()
		primary = s.buf
	}
	if f.MonitorOn() {
		opts := monitor.Options{
			DumpPath:    strOf(f.flight),
			RunRegistry: s.Registry,
			RunID:       s.RunID,
			Logger:      s.Log,
			// Scrapes always carry the baseline go/process gauges plus the
			// comm/OST totals, even when the periodic sampler and wire
			// telemetry are off.
			ScrapeHook: func() {
				runtimeobs.CollectBaseline(s.Registry)
				s.collectWireBaseline()
			},
		}
		if s.archive != nil {
			opts.AnomalyHook = s.captureAnomalyProfiles
		}
		s.Monitor = monitor.New(opts)
		primary = s.Monitor.Tee(primary)
	}
	if f.WireOn() {
		s.Wire = wire.NewCollector()
		// With a monitor attached, wire events ride the tee's
		// secondary-only path (EmitSide): the monitor folds them live while
		// the primary Chrome sink stays byte-identical to an unwired run.
		if t, ok := primary.(*trace.Tee); ok {
			s.Wire.SetSide(t)
		}
	}
	if primary != nil || f.CountersOn() || f.CountersCSV() != "" {
		var sinks []trace.Sink
		if primary != nil {
			sinks = append(sinks, primary)
		}
		s.Tracer = trace.New(nil, sinks...)
		s.Tracer.SetCounters(s.Registry)
	}

	if every := f.RuntimeSampleEvery(); every > 0 {
		s.sampler = runtimeobs.NewSampler(runtimeobs.SamplerConfig{
			Tracer:   s.Tracer,
			Registry: s.Registry,
			Interval: every,
		})
		s.sampler.Start()
		s.Log.Info("runtime sampler started", "interval", every.String())
	}
	if f.CaptureProfileOn() {
		stop, err := profiling.StartCPUCapture()
		if err != nil {
			// A concurrent profiler owns the CPU profile; degrade rather
			// than fail the run.
			s.Log.Warn("whole-run cpu capture unavailable", "err", err.Error())
		} else {
			s.cpuStop = stop
			s.Log.Info("whole-run cpu capture started")
		}
	}

	if addr := strOf(f.profile); addr != "" {
		srv, err := profiling.Serve(addr)
		if err != nil {
			s.close()
			return nil, err
		}
		s.profSrv = srv
		s.Log.Info("pprof serving", "url", fmt.Sprintf("http://%s/debug/pprof/", srv.Addr()))
	}
	if addr := f.MetricsAddr(); addr != "" {
		srv, err := profiling.Serve(addr)
		if err != nil {
			s.close()
			return nil, err
		}
		srv.Handle("/metrics", s.Monitor.MetricsHandler())
		srv.Handle("/status", s.Monitor.StatusHandler())
		s.metricsSrv = srv
		s.Log.Info("monitor serving", "metrics", fmt.Sprintf("http://%s/metrics", srv.Addr()), "status", fmt.Sprintf("http://%s/status", srv.Addr()))
	}
	// Graceful shutdown: the first SIGINT/SIGTERM lands the session —
	// registered interrupt hooks run (e.g. a final checkpoint cut), the
	// trace flushes, the record archives with outcome "interrupted" — then
	// the process exits 128+signal. Delivery stops after the first signal,
	// so a second one kills hard with the default disposition.
	s.sigCh = make(chan os.Signal, 1)
	signal.Notify(s.sigCh, os.Interrupt, syscall.SIGTERM)
	go s.watchSignals()

	s.Log.Info("run start")
	return s, nil
}

// watchSignals is the session's signal goroutine.
func (s *Session) watchSignals() {
	sig, ok := <-s.sigCh
	if !ok {
		return
	}
	signal.Stop(s.sigCh)
	s.Log.Warn("signal received, landing session", "signal", sig.String())
	s.mu.Lock()
	hooks := append([]func(){}, s.onInterrupt...)
	s.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	s.Finish(ErrInterrupted)
	code := 130 // 128 + SIGINT
	if sig == syscall.SIGTERM {
		code = 143
	}
	os.Exit(code)
}

// OnInterrupt registers fn to run before the session lands on
// SIGINT/SIGTERM — e.g. cutting a final checkpoint. Hooks run in
// registration order on the signal goroutine.
func (s *Session) OnInterrupt(fn func()) {
	s.mu.Lock()
	s.onInterrupt = append(s.onInterrupt, fn)
	s.mu.Unlock()
}

// SetParent records run lineage: this run resumed from a checkpoint cut by
// parentRunID and re-entered the cycle loop at resumeCycle.
func (s *Session) SetParent(parentRunID string, resumeCycle int) {
	s.mu.Lock()
	s.parentRun, s.resumeCycle = parentRunID, resumeCycle
	s.mu.Unlock()
	s.Log.Info("resumed from checkpoint", "parent_run", parentRunID, "resume_cycle", resumeCycle)
}

// PlanHash returns the compiled plan's content address recorded by
// Describe, or "" before Describe (or when hashing failed).
func (s *Session) PlanHash() string { return s.planHash }

// Archive returns the session's run ledger, nil without -archive.
func (s *Session) Archive() *Archive { return s.archive }

// Labels returns the run's pprof label set for plan execution
// (Problem.Prof, schedule/cycle Config.Prof). Nil — meaning labeling is
// disabled, at zero cost — until Describe runs with a profiling surface
// active; a nil *LabelSet is safe to use everywhere.
func (s *Session) Labels() *runtimeobs.LabelSet { return s.labels }

// Observer returns the monitor as a plan.RunObserver, or a nil interface
// when the session is unmonitored (assigning a typed nil *Monitor into
// Problem.Obs would make the interface non-nil).
func (s *Session) Observer() plan.RunObserver {
	if s.Monitor == nil {
		return nil
	}
	return s.Monitor
}

// MsgObserver returns the wire collector as a plan.MsgObserver, or a nil
// interface without -wire (same typed-nil guard as Observer).
func (s *Session) MsgObserver() plan.MsgObserver {
	if s.Wire == nil {
		return nil
	}
	return s.Wire
}

// collectWireBaseline mirrors the always-on transport and file-system
// counters (mpi.*, parfs.*) into comm/ost gauges, so every /metrics scrape
// carries senkf_comm_* and senkf_ost_* series even when -wire is off.
func (s *Session) collectWireBaseline() {
	s.Registry.SetGauge("comm/msgs_total", s.Registry.CounterValue("mpi.msgs"))
	s.Registry.SetGauge("comm/bytes_total", s.Registry.CounterValue("mpi.bytes"))
	s.Registry.SetGauge("ost/requests_total", s.Registry.CounterValue("parfs.requests"))
	s.Registry.SetGauge("ost/bytes_total", s.Registry.CounterValue("parfs.bytes"))
	s.Registry.SetGauge("ost/seeks_total", s.Registry.CounterValue("parfs.seeks"))
}

// Describe records what the run executes: the algorithm name, the
// substrate ("real" or "simulated"), and — when a compiled plan is at
// hand — the spec summary and content-addressed plan hash.
func (s *Session) Describe(algorithm, substrate string, cp *plan.Compiled) {
	s.algorithm, s.substrate = algorithm, substrate
	// Mint the run's pprof label set when any profiling surface exists:
	// the whole-run capture, a live /debug/pprof server, or the archive's
	// anomaly snapshots. Labels are inherited at goroutine spawn, so this
	// must happen before the plan executes.
	if s.cpuStop != nil || s.profSrv != nil || s.archive != nil {
		s.labels = runtimeobs.Labels(s.RunID, algorithm, substrate)
	}
	if cp != nil {
		s.spec = SpecSummary(cp)
		if h, err := PlanHash(cp); err == nil {
			s.planHash = h
		} else {
			s.Log.Warn("plan hash failed", "err", err.Error())
		}
	}
	args := []any{"algorithm", algorithm, "substrate", substrate}
	if s.planHash != "" {
		args = append(args, "plan_hash", s.planHash)
	}
	s.Log.Info("run describe", args...)
}

// SetFaults attaches the run's fault-injection plan to the manifest.
func (s *Session) SetFaults(v any) {
	data, err := jsonMarshal(v)
	if err != nil {
		s.Log.Warn("fault plan not serializable", "err", err.Error())
		return
	}
	s.faults = data
}

// Note records one extra manifest config entry (e.g. the tuner's choice)
// beyond the flag set.
func (s *Session) Note(key, value string) {
	s.mu.Lock()
	s.notes[key] = value
	s.mu.Unlock()
}

// RecordCycle publishes one assimilation cycle's outcome to the archive's
// per-cycle series and, when monitored, to the monitor's live series.
func (s *Session) RecordCycle(c monitor.CycleSample) {
	s.mu.Lock()
	s.cycles = append(s.cycles, c)
	s.mu.Unlock()
	if s.Monitor != nil {
		s.Monitor.RecordCycle(c)
	}
}

// captureAnomalyProfiles is the monitor's anomaly hook: on the first
// flight-recorder dump it snapshots heap and CPU profiles for the archive
// record. Runs on its own goroutine (the monitor never blocks on it);
// Finish waits for it.
func (s *Session) captureAnomalyProfiles(kind string) {
	s.mu.Lock()
	if s.captured || s.finished {
		s.mu.Unlock()
		return
	}
	s.captured = true
	s.profWG.Add(1)
	s.mu.Unlock()
	defer s.profWG.Done()

	s.Log.Warn("anomaly: capturing pprof snapshots", "kind", kind)
	if heap, err := profiling.CaptureHeapProfile(); err == nil {
		s.mu.Lock()
		s.profiles["profiles/heap.pprof"] = heap
		s.mu.Unlock()
	} else {
		s.Log.Warn("heap profile capture failed", "err", err.Error())
	}
	if s.cpuStop != nil {
		// The whole-run capture already owns the CPU profiler and will
		// cover the anomaly window; a second StartCPUProfile would fail.
		return
	}
	if cpu, err := profiling.CaptureCPUProfile(250 * time.Millisecond); err == nil {
		s.mu.Lock()
		s.profiles[CPUProfileFile] = cpu
		s.mu.Unlock()
	} else {
		s.Log.Warn("cpu profile capture failed", "err", err.Error())
	}
}

// close shuts down servers and the monitor tee.
func (s *Session) close() {
	if s.Monitor != nil {
		s.Monitor.Close()
	}
	if s.profSrv != nil {
		s.profSrv.Close()
	}
	if s.metricsSrv != nil {
		s.metricsSrv.Close()
	}
}

// Finish lands the run: trace file, counter table/CSV, archive record,
// monitor summary, metrics linger, shutdown — the tail every binary used
// to hand-roll. runErr is the run's outcome (nil for success); it is
// archived either way. Returns the first landing error.
func (s *Session) Finish(runErr error) error {
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return nil
	}
	s.finished = true
	s.mu.Unlock()

	// Retire the signal watcher: once the session is landing normally a
	// late signal should get the default hard-kill disposition, not a
	// second landing attempt.
	if s.sigCh != nil {
		signal.Stop(s.sigCh)
		close(s.sigCh)
	}

	// Stop the runtime sampler first — Stop takes one final synchronous
	// sample, and the tee must still be open for it to reach the monitor
	// and the trace buffer.
	if s.sampler != nil {
		s.sampler.Stop()
	}
	// Drain the tee so the monitor's view is complete before we snapshot
	// its status (the primary buffer is written inline and needs no
	// drain).
	if s.Monitor != nil {
		s.Monitor.Close()
	}

	var firstErr error
	fail := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	if out := s.flags.TraceOut(); out != "" && s.buf != nil {
		fail(writeFileWith(out, func(w io.Writer) error { return s.buf.WriteChrome(w) }))
		if firstErr == nil {
			fmt.Printf("wrote %d trace events to %s\n", s.buf.Len(), out)
		}
	}
	if s.flags.CountersOn() {
		fmt.Println("\nruntime counters:")
		fail(s.Registry.WriteTable(os.Stdout))
	}
	if out := s.flags.CountersCSV(); out != "" {
		fail(writeFileWith(out, s.Registry.WriteCSV))
		if firstErr == nil {
			fmt.Printf("wrote counters CSV to %s\n", out)
		}
	}
	if s.Wire != nil {
		fmt.Println()
		fail(s.Wire.Summary(0).WriteTable(os.Stdout))
	}

	if s.archive != nil {
		if dir, err := s.writeArchiveRecord(runErr); err != nil {
			s.Log.Error("archive write failed", "err", err.Error())
			fail(err)
		} else {
			s.Log.Info("archived run record", "dir", dir)
		}
	}

	if s.Monitor != nil {
		s.writeMonitorSummary(os.Stdout)
		if s.metricsSrv != nil {
			if linger := s.flags.Linger(); linger > 0 {
				fmt.Printf("monitor: serving metrics for another %s\n", linger)
				time.Sleep(linger)
			}
		}
	}

	switch {
	case runErr == nil:
		s.Log.Info("run end", "outcome", "ok", "duration_s", time.Since(s.start).Seconds())
	case errors.Is(runErr, ErrInterrupted):
		s.Log.Warn("run end", "outcome", "interrupted", "duration_s", time.Since(s.start).Seconds())
	default:
		s.Log.Error("run end", "outcome", "error", "err", runErr.Error(), "duration_s", time.Since(s.start).Seconds())
	}
	s.close()
	return firstErr
}

// Fatal reports a run error, lands the session, and exits non-zero — the
// session-aware replacement for log.Fatal after Start().
func (s *Session) Fatal(err error) {
	s.Log.Error(s.flags.binary + ": " + err.Error())
	s.Finish(err)
	os.Exit(1)
}

// writeMonitorSummary prints the post-run monitor block the binaries used
// to print by hand.
func (s *Session) writeMonitorSummary(w io.Writer) {
	st := s.Monitor.Status()
	if len(st.Cycles) > 0 {
		fmt.Fprintf(w, "monitor: %d cycles published, %d events, %d divergences, %d watchdog verdicts\n",
			len(st.Cycles), st.Events, st.Conformance.DivergenceCount, len(st.Verdicts))
	} else {
		fmt.Fprintf(w, "monitor: %d events, %d/%d spans conformant, %d divergences, %d watchdog verdicts\n",
			st.Events, st.Conformance.MatchedSpans, st.Conformance.ExpectedSpans,
			st.Conformance.DivergenceCount, len(st.Verdicts))
	}
	for _, v := range st.Verdicts {
		fmt.Fprintf(w, "  watchdog: %s\n", v)
	}
	for _, d := range st.Conformance.Divergences {
		fmt.Fprintf(w, "  divergence: %s\n", d)
	}
	if st.FlightDump != "" {
		fmt.Fprintf(w, "  flight recorder dumped to %s\n", st.FlightDump)
	}
}

// writeArchiveRecord assembles and stores this run's archive record.
func (s *Session) writeArchiveRecord(runErr error) (string, error) {
	// Give a just-tripped anomaly hook a bounded window to finish its
	// profile capture.
	waitTimeout(&s.profWG, 3*time.Second)

	files := map[string][]byte{}

	// Land the whole-run CPU capture and attribute it onto the plan's
	// trace once; the report and runtime.json both carry the result.
	var cpuProfile []byte
	var hot *runtimeobs.Attribution
	var hotErr error
	if s.cpuStop != nil {
		cpuProfile = s.cpuStop()
		if len(cpuProfile) > 0 {
			files[CPUProfileFile] = cpuProfile
			if p, err := runtimeobs.ParseProfile(cpuProfile); err != nil {
				hotErr = err
			} else if s.buf != nil {
				hot, hotErr = runtimeobs.Attribute(p, s.buf.Events())
			}
			if hotErr != nil {
				s.Log.Warn("hot-stage attribution failed", "err", hotErr.Error())
			}
		}
	}

	// Refresh the baseline go/process gauges so the archived counters
	// carry final heap/GC/CPU numbers even without the sampler.
	runtimeobs.CollectBaseline(s.Registry)
	m := &Manifest{
		RunID:     s.RunID,
		Binary:    s.flags.binary,
		Start:     s.start.UTC().Format(time.RFC3339),
		DurationS: time.Since(s.start).Seconds(),
		Substrate: s.substrate,
		Config:    s.flags.config(),
		Spec:      s.spec,
		PlanHash:  s.planHash,
		Outcome:   "ok",
	}
	if s.algorithm != "" {
		if m.Spec == nil {
			m.Spec = &SpecInfo{Algorithm: s.algorithm}
		}
	}
	if runErr != nil {
		if errors.Is(runErr, ErrInterrupted) {
			m.Outcome = "interrupted"
		} else {
			m.Outcome = "error"
			m.Error = runErr.Error()
		}
	}
	if len(s.faults) > 0 {
		m.Faults = s.faults
	}
	s.mu.Lock()
	m.ParentRunID = s.parentRun
	m.ResumeCycle = s.resumeCycle
	for k, v := range s.notes {
		if m.Config == nil {
			m.Config = map[string]string{}
		}
		m.Config[k] = v
	}
	cycles := append([]monitor.CycleSample(nil), s.cycles...)
	for name, data := range s.profiles {
		files[name] = data
	}
	s.mu.Unlock()

	counters := FlattenSnapshot(s.Registry.Snapshot())
	if len(counters) > 0 {
		data, err := jsonMarshalIndent(counters)
		if err != nil {
			return "", err
		}
		files[CountersFile] = data
	}

	if s.buf != nil && s.buf.Len() > 0 {
		var events = s.buf.Events()
		data, err := chromeBytes(events)
		if err != nil {
			return "", err
		}
		files[TraceFile] = data
		if rep, err := report.Build(events, counters); err == nil {
			m.Runtime = rep.Runtime
			rep.Hot = hot
			data, err := jsonMarshalIndent(rep)
			if err != nil {
				return "", err
			}
			files[ReportFile] = data
		} else {
			s.Log.Warn("run report not derivable from trace", "err", err.Error())
		}
	}

	if s.sampler != nil || len(cpuProfile) > 0 {
		var sum runtimeobs.Summary
		if s.sampler != nil {
			sum = s.sampler.Summary()
		}
		sum.HotStages = hot
		if hotErr != nil {
			sum.AttributionError = hotErr.Error()
		}
		data, err := jsonMarshalIndent(sum)
		if err != nil {
			return "", err
		}
		files[RuntimeFile] = data
	}

	if s.Monitor != nil {
		st := s.Monitor.Status()
		m.Verdicts = len(st.Verdicts)
		m.Divergences = st.Conformance.DivergenceCount
		data, err := jsonMarshalIndent(st)
		if err != nil {
			return "", err
		}
		files[MonitorFile] = data
		if dump := s.Monitor.LastDump(); len(dump) > 0 {
			data, err := chromeBytes(dump)
			if err != nil {
				return "", err
			}
			files[FlightFile] = data
		}
	}
	if len(cycles) > 0 {
		m.Cycles = len(cycles)
		data, err := jsonMarshalIndent(cycles)
		if err != nil {
			return "", err
		}
		files[CyclesFile] = data
	}
	if s.Wire != nil {
		data, err := jsonMarshalIndent(s.Wire.Summary(0))
		if err != nil {
			return "", err
		}
		files[WireFile] = data
	}
	return s.archive.WriteRecord(m, files)
}

// writeFileWith creates path and streams write into it.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// waitTimeout waits on wg, giving up after d.
func waitTimeout(wg *sync.WaitGroup, d time.Duration) {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
	}
}
