// Cross-run analytics over the archive: list (filterable table of
// archived runs), diff (config/plan-hash/counter/critical-path deltas
// with per-term Eq. 7–10 drift attribution) and trend (time-ordered
// series of one metric across matching runs, with a regression flag like
// the bench gate). senkf-report fronts all three.

package runlog

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Filter selects archived runs for list/trend.
type Filter struct {
	// Binary, Algorithm, Substrate and Outcome match exactly when
	// non-empty.
	Binary    string
	Algorithm string
	Substrate string
	Outcome   string
}

func (f Filter) match(m *Manifest) bool {
	if f.Binary != "" && m.Binary != f.Binary {
		return false
	}
	if f.Algorithm != "" && (m.Spec == nil || m.Spec.Algorithm != f.Algorithm) {
		return false
	}
	if f.Substrate != "" && m.Substrate != f.Substrate {
		return false
	}
	if f.Outcome != "" && m.Outcome != f.Outcome {
		return false
	}
	return true
}

// Summary is one run's list row, derived from its manifest alone.
type Summary struct {
	RunID       string  `json:"run_id"`
	Start       string  `json:"start_utc"`
	Binary      string  `json:"binary"`
	Algorithm   string  `json:"algorithm,omitempty"`
	Substrate   string  `json:"substrate,omitempty"`
	Outcome     string  `json:"outcome"`
	Runtime     float64 `json:"runtime_s,omitempty"`
	DurationS   float64 `json:"duration_s"`
	Verdicts    int     `json:"verdicts"`
	Divergences int     `json:"divergences"`
	Cycles      int     `json:"cycles,omitempty"`
	Parent      string  `json:"parent_run_id,omitempty"`
	ResumeCycle int     `json:"resume_cycle,omitempty"`
	// Runtime-observability headline numbers from the attached
	// runtime.json; zero for records archived before runtime sampling
	// existed (rendered as blanks).
	PeakHeapBytes float64 `json:"peak_heap_bytes,omitempty"`
	MaxGCPauseS   float64 `json:"max_gc_pause_s,omitempty"`
}

func summarize(m *Manifest) Summary {
	s := Summary{
		RunID: m.RunID, Start: m.Start, Binary: m.Binary,
		Substrate: m.Substrate, Outcome: m.Outcome,
		Runtime: m.Runtime, DurationS: m.DurationS,
		Verdicts: m.Verdicts, Divergences: m.Divergences, Cycles: m.Cycles,
		Parent: m.ParentRunID, ResumeCycle: m.ResumeCycle,
	}
	if m.Spec != nil {
		s.Algorithm = m.Spec.Algorithm
	}
	return s
}

// List returns the filtered archived runs, ordered by start time.
func (a *Archive) List(f Filter) ([]Summary, error) {
	ids, err := a.IDs()
	if err != nil {
		return nil, err
	}
	var out []Summary
	for _, id := range ids {
		rec, err := a.Load(id)
		if err != nil {
			return nil, err
		}
		if f.match(&rec.Manifest) {
			s := summarize(&rec.Manifest)
			// Runtime columns come from the attached runtime.json; a
			// record without one (pre-runtime-sampling, or the file
			// failed verification) just leaves the columns blank.
			if rs, err := rec.RuntimeSummary(); err == nil && rs != nil {
				s.PeakHeapBytes = float64(rs.PeakHeapInuseBytes)
				s.MaxGCPauseS = rs.MaxGCPauseSeconds
			}
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].RunID < out[j].RunID
	})
	return out, nil
}

// WriteListTable renders list rows as an aligned table.
func WriteListTable(w io.Writer, rows []Summary) error {
	if _, err := fmt.Fprintf(w, "%-34s %-20s %-7s %-7s %-9s %-11s %9s %8s %5s %9s %8s %s\n",
		"RUN ID", "START (UTC)", "BINARY", "ALGO", "SUBSTRATE", "OUTCOME", "RUNTIME", "VERDICTS", "DIVS", "PEAK-HEAP", "GC-PAUSE", "LINEAGE"); err != nil {
		return err
	}
	for _, r := range rows {
		runtime := "-"
		if r.Runtime > 0 {
			runtime = fmt.Sprintf("%.3fs", r.Runtime)
		}
		peakHeap := "-"
		if r.PeakHeapBytes > 0 {
			peakHeap = fmtBytes(r.PeakHeapBytes)
		}
		gcPause := "-"
		if r.MaxGCPauseS > 0 {
			gcPause = fmt.Sprintf("%.2gms", 1e3*r.MaxGCPauseS)
		}
		binary := strings.TrimPrefix(r.Binary, "senkf-")
		if _, err := fmt.Fprintf(w, "%-34s %-20s %-7s %-7s %-9s %-11s %9s %8d %5d %9s %8s %s\n",
			r.RunID, r.Start, binary, orDash(r.Algorithm), orDash(r.Substrate),
			r.Outcome, runtime, r.Verdicts, r.Divergences, peakHeap, gcPause, lineageShort(r)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d run(s)\n", len(rows))
	return err
}

// fmtBytes renders a byte count compactly for the list table.
func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2gGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.3gMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.3gKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// lineageShort renders a resumed run's ancestry compactly for the list
// table: "^<parent-id-suffix>@c<resume cycle>", "-" for a fresh run.
func lineageShort(s Summary) string {
	if s.Parent == "" {
		return "-"
	}
	suffix := s.Parent
	if i := strings.LastIndex(suffix, "-"); i >= 0 && i+1 < len(suffix) {
		suffix = suffix[i+1:]
	}
	return fmt.Sprintf("^%s@c%d", suffix, s.ResumeCycle)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// ConfigDelta is one differing config entry across two runs.
type ConfigDelta struct {
	Key string `json:"key"`
	A   string `json:"a"`
	B   string `json:"b"`
}

// ValueDelta is one differing numeric series across two runs.
type ValueDelta struct {
	Name  string  `json:"name"`
	A     float64 `json:"a"`
	B     float64 `json:"b"`
	Delta float64 `json:"delta"` // B − A
}

// DriftDelta compares one Eq. 7–10 drift term across two runs.
type DriftDelta struct {
	Term      string  `json:"term"`
	MeasuredA float64 `json:"measured_a"`
	MeasuredB float64 `json:"measured_b"`
	RelErrA   float64 `json:"rel_err_a"`
	RelErrB   float64 `json:"rel_err_b"`
}

// Diff is the structured comparison of two archived runs.
type Diff struct {
	RunA      string `json:"run_a"`
	RunB      string `json:"run_b"`
	PlanHashA string `json:"plan_hash_a,omitempty"`
	PlanHashB string `json:"plan_hash_b,omitempty"`
	// PlanEqual is true when both runs executed structurally identical
	// compiled plans (equal content hashes).
	PlanEqual bool `json:"plan_equal"`
	// Lineage notes a parent/child relation between the two runs:
	// "b-resumes-a" or "a-resumes-b", with ResumeCycle holding the cycle
	// the child re-entered. Empty when neither resumed from the other.
	Lineage     string        `json:"lineage,omitempty"`
	ResumeCycle int           `json:"resume_cycle,omitempty"`
	Config      []ConfigDelta `json:"config,omitempty"`
	RuntimeA    float64       `json:"runtime_a,omitempty"`
	RuntimeB    float64       `json:"runtime_b,omitempty"`
	// CriticalPath holds the per-"class/phase" critical-path attribution
	// deltas (seconds).
	CriticalPath []ValueDelta `json:"critical_path,omitempty"`
	// Efficiency compares the §4.2 pipeline efficiencies.
	Efficiency *ValueDelta `json:"pipeline_efficiency,omitempty"`
	// Drift attributes the runtime delta to the Eq. 7–10 terms.
	Drift []DriftDelta `json:"drift,omitempty"`
	// Counters holds the largest counter deltas (histogram buckets
	// excluded), CountersElided the number beyond the cap.
	Counters       []ValueDelta `json:"counters,omitempty"`
	CountersElided int          `json:"counters_elided,omitempty"`
	// RuntimeObs compares the runtime-observability headline numbers
	// (runtime.json); empty unless both runs archived one.
	RuntimeObs []ValueDelta `json:"runtime_obs,omitempty"`
}

// maxCounterDeltas caps the diff's counter section.
const maxCounterDeltas = 12

// DiffRuns compares two archived runs (IDs may be unique prefixes).
func (a *Archive) DiffRuns(idA, idB string) (*Diff, error) {
	fullA, err := a.Resolve(idA)
	if err != nil {
		return nil, err
	}
	fullB, err := a.Resolve(idB)
	if err != nil {
		return nil, err
	}
	ra, err := a.Load(fullA)
	if err != nil {
		return nil, err
	}
	rb, err := a.Load(fullB)
	if err != nil {
		return nil, err
	}
	ma, mb := &ra.Manifest, &rb.Manifest
	d := &Diff{
		RunA: fullA, RunB: fullB,
		PlanHashA: ma.PlanHash, PlanHashB: mb.PlanHash,
		PlanEqual: ma.PlanHash != "" && ma.PlanHash == mb.PlanHash,
		RuntimeA:  ma.Runtime, RuntimeB: mb.Runtime,
	}
	switch {
	case mb.ParentRunID != "" && mb.ParentRunID == ma.RunID:
		d.Lineage, d.ResumeCycle = "b-resumes-a", mb.ResumeCycle
	case ma.ParentRunID != "" && ma.ParentRunID == mb.RunID:
		d.Lineage, d.ResumeCycle = "a-resumes-b", ma.ResumeCycle
	}

	// Config deltas over the union of keys.
	keys := map[string]bool{}
	for k := range ma.Config {
		keys[k] = true
	}
	for k := range mb.Config {
		keys[k] = true
	}
	for k := range keys {
		va, vb := ma.Config[k], mb.Config[k]
		if va != vb {
			d.Config = append(d.Config, ConfigDelta{Key: k, A: va, B: vb})
		}
	}
	sort.Slice(d.Config, func(i, j int) bool { return d.Config[i].Key < d.Config[j].Key })

	// Report-level deltas: critical-path attribution, pipeline
	// efficiency, per-term drift.
	repA, err := ra.Report()
	if err != nil {
		return nil, err
	}
	repB, err := rb.Report()
	if err != nil {
		return nil, err
	}
	if repA != nil && repB != nil {
		attr := map[string]bool{}
		for k := range repA.CriticalPath.Attribution {
			attr[k] = true
		}
		for k := range repB.CriticalPath.Attribution {
			attr[k] = true
		}
		for k := range attr {
			va, vb := repA.CriticalPath.Attribution[k], repB.CriticalPath.Attribution[k]
			d.CriticalPath = append(d.CriticalPath, ValueDelta{Name: k, A: va, B: vb, Delta: vb - va})
		}
		sort.Slice(d.CriticalPath, func(i, j int) bool { return d.CriticalPath[i].Name < d.CriticalPath[j].Name })
		d.Efficiency = &ValueDelta{
			Name: "pipeline_efficiency",
			A:    repA.PipelineEfficiency, B: repB.PipelineEfficiency,
			Delta: repB.PipelineEfficiency - repA.PipelineEfficiency,
		}
		if repA.Model != nil && repB.Model != nil {
			terms := map[string][2]int{}
			for i, t := range repA.Model.Drift.Terms {
				terms[t.Term] = [2]int{i, -1}
			}
			for i, t := range repB.Model.Drift.Terms {
				if v, ok := terms[t.Term]; ok {
					v[1] = i
					terms[t.Term] = v
				}
			}
			var names []string
			for name, v := range terms {
				if v[1] >= 0 {
					names = append(names, name)
				}
			}
			sort.Strings(names)
			for _, name := range names {
				v := terms[name]
				ta, tb := repA.Model.Drift.Terms[v[0]], repB.Model.Drift.Terms[v[1]]
				d.Drift = append(d.Drift, DriftDelta{
					Term: name, MeasuredA: ta.Measured, MeasuredB: tb.Measured,
					RelErrA: ta.RelErr, RelErrB: tb.RelErr,
				})
			}
		}
	}

	// Counter deltas, largest first, histogram buckets excluded.
	ca, err := ra.Counters()
	if err != nil {
		return nil, err
	}
	cb, err := rb.Counters()
	if err != nil {
		return nil, err
	}
	ckeys := map[string]bool{}
	for k := range ca {
		ckeys[k] = true
	}
	for k := range cb {
		ckeys[k] = true
	}
	var deltas []ValueDelta
	for k := range ckeys {
		if strings.Contains(k, "/le_") {
			continue
		}
		va, vb := ca[k], cb[k]
		if va != vb {
			deltas = append(deltas, ValueDelta{Name: k, A: va, B: vb, Delta: vb - va})
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		da, db := math.Abs(deltas[i].Delta), math.Abs(deltas[j].Delta)
		if da != db {
			return da > db
		}
		return deltas[i].Name < deltas[j].Name
	})
	if len(deltas) > maxCounterDeltas {
		d.CountersElided = len(deltas) - maxCounterDeltas
		deltas = deltas[:maxCounterDeltas]
	}
	d.Counters = deltas

	// Runtime-observability deltas, when both runs archived runtime.json.
	rta, err := ra.RuntimeSummary()
	if err != nil {
		return nil, err
	}
	rtb, err := rb.RuntimeSummary()
	if err != nil {
		return nil, err
	}
	if rta != nil && rtb != nil {
		add := func(name string, va, vb float64) {
			if va != 0 || vb != 0 {
				d.RuntimeObs = append(d.RuntimeObs, ValueDelta{Name: name, A: va, B: vb, Delta: vb - va})
			}
		}
		add("peak_goroutines", float64(rta.PeakGoroutines), float64(rtb.PeakGoroutines))
		add("peak_heap_inuse_bytes", float64(rta.PeakHeapInuseBytes), float64(rtb.PeakHeapInuseBytes))
		add("gc_cycles", float64(rta.GCCycles), float64(rtb.GCCycles))
		add("max_gc_pause_s", rta.MaxGCPauseSeconds, rtb.MaxGCPauseSeconds)
		add("alloc_bytes", float64(rta.AllocBytes), float64(rtb.AllocBytes))
	}
	return d, nil
}

// WriteText renders the diff as a human-readable summary.
func (d *Diff) WriteText(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("diff %s -> %s\n", d.RunA, d.RunB); err != nil {
		return err
	}
	switch d.Lineage {
	case "b-resumes-a":
		if err := p("  lineage: b resumed from a's checkpoint at cycle %d\n", d.ResumeCycle); err != nil {
			return err
		}
	case "a-resumes-b":
		if err := p("  lineage: a resumed from b's checkpoint at cycle %d\n", d.ResumeCycle); err != nil {
			return err
		}
	}
	switch {
	case d.PlanEqual:
		if err := p("  plan: identical (%s)\n", d.PlanHashA); err != nil {
			return err
		}
	case d.PlanHashA != "" || d.PlanHashB != "":
		if err := p("  plan: DIFFERENT\n    a: %s\n    b: %s\n", orDash(d.PlanHashA), orDash(d.PlanHashB)); err != nil {
			return err
		}
	}
	if d.RuntimeA > 0 && d.RuntimeB > 0 {
		rel := (d.RuntimeB - d.RuntimeA) / d.RuntimeA
		if err := p("  runtime: %.4gs -> %.4gs (%+.2f%%)\n", d.RuntimeA, d.RuntimeB, 100*rel); err != nil {
			return err
		}
	}
	if len(d.Config) > 0 {
		if err := p("  config deltas:\n"); err != nil {
			return err
		}
		for _, c := range d.Config {
			if err := p("    %-18s %q -> %q\n", c.Key, c.A, c.B); err != nil {
				return err
			}
		}
	}
	if len(d.CriticalPath) > 0 {
		if err := p("  critical path attribution (s):\n"); err != nil {
			return err
		}
		for _, v := range d.CriticalPath {
			if err := p("    %-18s %10.4g -> %10.4g  (%+.4g)\n", v.Name, v.A, v.B, v.Delta); err != nil {
				return err
			}
		}
	}
	if d.Efficiency != nil {
		if err := p("  pipeline efficiency: %.3f -> %.3f (%+.3f)\n",
			d.Efficiency.A, d.Efficiency.B, d.Efficiency.Delta); err != nil {
			return err
		}
	}
	if len(d.Drift) > 0 {
		if err := p("  model drift (Eq. 7-10 terms, measured s | rel err):\n"); err != nil {
			return err
		}
		for _, t := range d.Drift {
			if err := p("    %-8s %10.4g -> %10.4g | %+7.2f%% -> %+7.2f%%\n",
				t.Term, t.MeasuredA, t.MeasuredB, 100*t.RelErrA, 100*t.RelErrB); err != nil {
				return err
			}
		}
	}
	if len(d.Counters) > 0 {
		if err := p("  largest counter deltas:\n"); err != nil {
			return err
		}
		for _, v := range d.Counters {
			if err := p("    %-40s %12.6g -> %12.6g  (%+.6g)\n", v.Name, v.A, v.B, v.Delta); err != nil {
				return err
			}
		}
		if d.CountersElided > 0 {
			if err := p("    ... and %d more\n", d.CountersElided); err != nil {
				return err
			}
		}
	}
	if len(d.RuntimeObs) > 0 {
		if err := p("  runtime observability:\n"); err != nil {
			return err
		}
		for _, v := range d.RuntimeObs {
			if err := p("    %-24s %12.6g -> %12.6g  (%+.6g)\n", v.Name, v.A, v.B, v.Delta); err != nil {
				return err
			}
		}
	}
	return nil
}

// TrendPoint is one run's value of the trended metric.
type TrendPoint struct {
	RunID string  `json:"run_id"`
	Start string  `json:"start_utc"`
	Value float64 `json:"value"`
}

// Trend is the time-ordered series of one metric across matching runs,
// with a simple regression verdict like the bench gate: the last run is
// compared against the median of the preceding ones.
type Trend struct {
	Metric string       `json:"metric"`
	Points []TrendPoint `json:"points"`
	// HigherBetter flips the regression direction (efficiency metrics).
	HigherBetter bool    `json:"higher_better"`
	Baseline     float64 `json:"baseline"` // median of all but the last point
	Last         float64 `json:"last"`
	Tolerance    float64 `json:"tolerance"`
	Regressed    bool    `json:"regressed"`
	// Skipped counts matching runs that do not carry the metric.
	Skipped int `json:"skipped,omitempty"`
}

// metricValue resolves one metric name against one record. ok is false
// when the record does not carry it.
func metricValue(rec *Record, metric string) (float64, bool, error) {
	m := &rec.Manifest
	switch metric {
	case "runtime":
		return m.Runtime, m.Runtime > 0, nil
	case "duration":
		return m.DurationS, true, nil
	case "verdicts":
		return float64(m.Verdicts), true, nil
	case "divergences":
		return float64(m.Divergences), true, nil
	case "cycles":
		return float64(m.Cycles), m.Cycles > 0, nil
	case "pipeline-efficiency":
		rep, err := rec.Report()
		if err != nil || rep == nil {
			return 0, false, err
		}
		return rep.PipelineEfficiency, true, nil
	case "peak-heap":
		rs, err := rec.RuntimeSummary()
		if err != nil || rs == nil {
			return 0, false, err
		}
		return float64(rs.PeakHeapInuseBytes), rs.PeakHeapInuseBytes > 0, nil
	case "max-gc-pause":
		rs, err := rec.RuntimeSummary()
		if err != nil || rs == nil {
			return 0, false, err
		}
		return rs.MaxGCPauseSeconds, rs.Samples > 0, nil
	case "peak-goroutines":
		rs, err := rec.RuntimeSummary()
		if err != nil || rs == nil {
			return 0, false, err
		}
		return float64(rs.PeakGoroutines), rs.PeakGoroutines > 0, nil
	}
	if rest, ok := strings.CutPrefix(metric, "stage"); ok {
		if n, err := strconv.Atoi(strings.TrimSuffix(rest, "-efficiency")); err == nil {
			rep, err := rec.Report()
			if err != nil || rep == nil {
				return 0, false, err
			}
			for _, s := range rep.Stages {
				if s.Stage == n {
					return s.Efficiency, true, nil
				}
			}
			return 0, false, nil
		}
	}
	// Counter metrics: exact flat key, or the counter/gauge shorthand.
	counters, err := rec.Counters()
	if err != nil || counters == nil {
		return 0, false, err
	}
	for _, key := range []string{metric, "counter/" + metric + "/value", "gauge/" + metric + "/value"} {
		if v, ok := counters[key]; ok {
			return v, true, nil
		}
	}
	return 0, false, nil
}

// TrendMetric assembles the metric's series over the filtered runs and
// flags a regression when the last run is worse than the median of its
// predecessors by more than tol (relative). Metrics named *efficiency*
// regress downward; everything else regresses upward.
func (a *Archive) TrendMetric(metric string, f Filter, tol float64) (*Trend, error) {
	if tol <= 0 {
		tol = 0.15
	}
	rows, err := a.List(f)
	if err != nil {
		return nil, err
	}
	t := &Trend{
		Metric:       metric,
		HigherBetter: strings.Contains(metric, "efficiency"),
		Tolerance:    tol,
	}
	for _, row := range rows {
		rec, err := a.Load(row.RunID)
		if err != nil {
			return nil, err
		}
		v, ok, err := metricValue(rec, metric)
		if err != nil {
			return nil, err
		}
		if !ok {
			t.Skipped++
			continue
		}
		t.Points = append(t.Points, TrendPoint{RunID: row.RunID, Start: row.Start, Value: v})
	}
	if len(t.Points) == 0 {
		return nil, fmt.Errorf("runlog: no archived run carries metric %q", metric)
	}
	t.Last = t.Points[len(t.Points)-1].Value
	if len(t.Points) >= 2 {
		prev := make([]float64, len(t.Points)-1)
		for i := range prev {
			prev[i] = t.Points[i].Value
		}
		t.Baseline = median(prev)
		if t.HigherBetter {
			t.Regressed = t.Last < t.Baseline*(1-tol)
		} else {
			t.Regressed = t.Last > t.Baseline*(1+tol)
		}
	} else {
		t.Baseline = t.Last
	}
	return t, nil
}

// WriteText renders the trend as a table plus the regression verdict.
func (t *Trend) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "trend of %s (%d runs", t.Metric, len(t.Points)); err != nil {
		return err
	}
	if t.Skipped > 0 {
		if _, err := fmt.Fprintf(w, ", %d without the metric", t.Skipped); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "):\n"); err != nil {
		return err
	}
	for _, pnt := range t.Points {
		if _, err := fmt.Fprintf(w, "  %-34s %-20s %12.6g\n", pnt.RunID, pnt.Start, pnt.Value); err != nil {
			return err
		}
	}
	if len(t.Points) < 2 {
		_, err := fmt.Fprintln(w, "one run: no baseline to compare against")
		return err
	}
	verdict := "ok"
	if t.Regressed {
		verdict = "REGRESSED"
	}
	dir := "above"
	if t.HigherBetter {
		dir = "below"
	}
	_, err := fmt.Fprintf(w, "last %.6g vs baseline median %.6g (tolerance %.0f%% %s): %s\n",
		t.Last, t.Baseline, 100*t.Tolerance, dir, verdict)
	return err
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
