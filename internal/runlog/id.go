// Run identity: every binary invocation mints one stable run ID at
// startup, and the same ID flows through the slog lines, the Prometheus
// senkf_run_info label, the monitor /status summary, the archive
// directory name and the bench records — so every artifact of one run
// correlates on one key.

package runlog

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
	"time"
)

// NewRunID mints a run ID of the form
//
//	<binary>-<YYYYMMDDTHHMMSSZ>-<hex8>
//
// e.g. "run-20260808T141503Z-a1b2c3d4" for senkf-run: the binary's short
// name (the "senkf-" prefix stripped), the UTC start instant at second
// resolution, and 4 random bytes breaking ties between same-second runs.
// Lexical order within one binary is start order. entropy defaults to
// crypto/rand when nil (tests inject a fixed reader for determinism).
func NewRunID(binary string, start time.Time, entropy io.Reader) string {
	short := strings.TrimPrefix(binary, "senkf-")
	if short == "" {
		short = "run"
	}
	if entropy == nil {
		entropy = rand.Reader
	}
	var b [4]byte
	if _, err := io.ReadFull(entropy, b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a broken
		// injected reader degrades to a timestamp-only suffix.
		copy(b[:], []byte{0, 0, 0, 0})
	}
	return fmt.Sprintf("%s-%s-%s", short,
		start.UTC().Format("20060102T150405Z"), hex.EncodeToString(b[:]))
}
