// Shared observability flag registration: the seven senkf binaries used
// to copy-paste ~27 flag definitions and the sink-wiring boilerplate
// behind them (-trace buffer, monitor tee, counter registry, pprof and
// metrics servers). Register once here, then Start() returns a Session
// holding the configured sink set plus the run's identity.

package runlog

import (
	"flag"
	"fmt"
	"time"
)

// Flags is the registered observability flag set of one binary. Pointers
// are nil for flags the binary did not register (RegisterBasic).
type Flags struct {
	binary string
	fs     *flag.FlagSet

	trace          *string
	counters       *bool
	countersCSV    *string
	profile        *string
	monitor        *bool
	metricsAddr    *string
	flight         *string
	archive        *string
	logLevel       *string
	linger         *time.Duration
	runtimeSample  *time.Duration
	captureProfile *bool
	wire           *bool
}

// Register installs the full observability flag set — -trace, -counters,
// -counters-csv, -profile, -monitor, -metrics-addr, -flight-recorder,
// -linger, -runtime-sample, -capture-profile, -archive and -log-level —
// on fs for the named binary (senkf-run, senkf-cycle, senkf-bench).
func Register(fs *flag.FlagSet, binary string) *Flags {
	f := RegisterBasic(fs, binary)
	f.trace = fs.String("trace", "", "write a Chrome trace-event JSON file of the run (open in Perfetto)")
	f.counters = fs.Bool("counters", false, "print runtime counters/gauges/histograms after the run")
	f.countersCSV = fs.String("counters-csv", "", "write the counter registry as CSV to this file (feeds senkf-report -counters)")
	f.monitor = fs.Bool("monitor", false, "attach the live plan-conformance monitor: watchdog verdicts, streaming metrics, flight recorder")
	f.metricsAddr = fs.String("metrics-addr", "", "with -monitor: serve Prometheus /metrics and JSON /status on this address")
	f.flight = fs.String("flight-recorder", "", "with -monitor: write the anomaly flight-recorder dump (Chrome trace JSON) here")
	f.linger = fs.Duration("linger", 0, "keep serving -metrics-addr for this long after the run, so it can be scraped")
	f.runtimeSample = fs.Duration("runtime-sample", 0, "sample runtime/metrics (goroutines, heap, GC pauses) on this cadence into the trace and registry (0 = off)")
	f.captureProfile = fs.Bool("capture-profile", false, "with -archive: capture a whole-run labeled CPU profile and archive it with hot-stage attribution")
	f.wire = fs.Bool("wire", false, "collect wire telemetry: per-edge comm accounting and per-OST read attribution (wire summary after the run, wire.json with -archive, live conformance with -monitor)")
	return f
}

// RegisterBasic installs the subset every binary carries: -profile,
// -archive and -log-level.
func RegisterBasic(fs *flag.FlagSet, binary string) *Flags {
	f := &Flags{binary: binary, fs: fs}
	f.profile = fs.String("profile", "", "serve /debug/pprof/ on this address (e.g. localhost:6060) while running")
	f.archive = fs.String("archive", "", "archive this run's record (manifest, counters, report, trace, monitor state) into this run-ledger directory")
	f.logLevel = fs.String("log-level", "info", "structured-log level: debug | info | warn | error")
	return f
}

func strOf(p *string) string {
	if p == nil {
		return ""
	}
	return *p
}

func boolOf(p *bool) bool { return p != nil && *p }

// TraceOut returns the -trace path ("" when unset or unregistered).
func (f *Flags) TraceOut() string { return strOf(f.trace) }

// CountersOn reports -counters.
func (f *Flags) CountersOn() bool { return boolOf(f.counters) }

// CountersCSV returns the -counters-csv path.
func (f *Flags) CountersCSV() string { return strOf(f.countersCSV) }

// MonitorOn reports -monitor.
func (f *Flags) MonitorOn() bool { return boolOf(f.monitor) }

// MetricsAddr returns the -metrics-addr value.
func (f *Flags) MetricsAddr() string { return strOf(f.metricsAddr) }

// ArchiveDir returns the -archive directory.
func (f *Flags) ArchiveDir() string { return strOf(f.archive) }

// RuntimeSampleEvery returns the -runtime-sample cadence (0 when off or
// unregistered).
func (f *Flags) RuntimeSampleEvery() time.Duration {
	if f.runtimeSample == nil {
		return 0
	}
	return *f.runtimeSample
}

// CaptureProfileOn reports -capture-profile.
func (f *Flags) CaptureProfileOn() bool { return boolOf(f.captureProfile) }

// WireOn reports -wire.
func (f *Flags) WireOn() bool { return boolOf(f.wire) }

// Linger returns the -linger duration.
func (f *Flags) Linger() time.Duration {
	if f.linger == nil {
		return 0
	}
	return *f.linger
}

// config snapshots the binary's full effective flag set (every registered
// flag at its post-parse value) for the archive manifest.
func (f *Flags) config() map[string]string {
	if f.fs == nil {
		return nil
	}
	out := map[string]string{}
	f.fs.VisitAll(func(fl *flag.Flag) {
		out[fl.Name] = fl.Value.String()
	})
	return out
}

// validate cross-checks flag combinations the binaries used to check by
// hand.
func (f *Flags) validate() error {
	if f.MetricsAddr() != "" && !f.MonitorOn() {
		return fmt.Errorf("-metrics-addr needs -monitor")
	}
	if strOf(f.flight) != "" && !f.MonitorOn() {
		return fmt.Errorf("-flight-recorder needs -monitor")
	}
	if f.CaptureProfileOn() && f.ArchiveDir() == "" {
		return fmt.Errorf("-capture-profile needs -archive")
	}
	if d := f.RuntimeSampleEvery(); d < 0 {
		return fmt.Errorf("-runtime-sample must be >= 0, got %s", d)
	}
	if _, err := ParseLevel(strOf(f.logLevel)); err != nil {
		return err
	}
	return nil
}
