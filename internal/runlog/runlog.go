// Package runlog is the persistent run ledger: every invocation of a
// senkf binary mints a stable run ID, and — when an archive directory is
// configured — writes a self-describing run record into it, so runs
// survive their process and can be listed, diffed and trended later
// (senkf-report list/diff/trend). One record bundles everything the
// in-process observability stack produced: the manifest (run identity,
// binary, full config, algorithm spec + compiled-plan hash, fault plan,
// substrate, outcome), the final counter registry, the structured run
// report (critical path, §4.2 overlap efficiency, Eq. 7–10 drift), the
// monitor's verdicts/divergences/incidents, the per-cycle RMSE/spread
// series, the Chrome trace, the flight-recorder dump, and any pprof
// snapshots captured on anomalies.
//
// The archive is content-addressed: the manifest records the SHA-256 of
// every attached file, and the manifest is written last, so a record
// either exists completely and verifiably or not at all. The layout is
//
//	<dir>/runs/<run-id>/manifest.json
//	<dir>/runs/<run-id>/<attached files...>
//
// The package is the audit-trail substrate the ROADMAP's senkf-serve
// daemon will attach to each submitted job; like the monitor it is
// substrate-free by construction (plan/trace/costmodel/report only — CI
// enforces the layering).
package runlog

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"senkf/internal/plan"
	"senkf/internal/report"
	"senkf/internal/runtimeobs"
	"senkf/internal/trace"
)

// ManifestSchema is the manifest.json schema version.
const ManifestSchema = 1

// Standard attached-file names inside a run directory.
const (
	ManifestFile = "manifest.json"
	CountersFile = "counters.json"
	ReportFile   = "report.json"
	MonitorFile  = "monitor.json"
	CyclesFile   = "cycles.json"
	TraceFile    = "trace.json"
	FlightFile   = "flight.json"
	// RuntimeFile is the runtime-observability summary (sampler peaks,
	// GC stats, hot-stage attribution) written under -runtime-sample
	// and/or -capture-profile.
	RuntimeFile = "runtime.json"
	// CPUProfileFile is the attached CPU profile: the whole-run labeled
	// capture under -capture-profile, or the anomaly-hook snapshot.
	CPUProfileFile = "profiles/cpu.pprof"
	// WireFile is the wire-telemetry summary (edge matrix top lines, OST
	// utilization timelines) written under -wire.
	WireFile = "wire.json"
)

// SpecInfo summarizes the compiled algorithm spec in the manifest.
type SpecInfo struct {
	Algorithm string `json:"algorithm"`
	NSdx      int    `json:"nsdx"`
	NSdy      int    `json:"nsdy"`
	N         int    `json:"n"`
	L         int    `json:"l"`
	NCg       int    `json:"ncg,omitempty"`
	Reader    string `json:"reader"`
	WorldSize int    `json:"world_size"`
}

// Manifest is the self-describing head of one archived run record. It is
// written last, after every attached file, and addresses each of them by
// SHA-256 — a record is complete iff its manifest exists and verifies.
type Manifest struct {
	Schema int    `json:"schema"`
	RunID  string `json:"run_id"`
	Binary string `json:"binary"`
	// Start is the run's UTC start time in RFC 3339 format; the run ID
	// embeds the same instant at second resolution.
	Start     string  `json:"start_utc"`
	DurationS float64 `json:"duration_s"`
	// Substrate is "real", "simulated", or "" for binaries that execute
	// no plan (senkf-gen).
	Substrate string `json:"substrate,omitempty"`
	// Config is the binary's full effective flag set, name -> value.
	Config map[string]string `json:"config,omitempty"`
	// Spec and PlanHash identify the compiled plan: the hash is SHA-256
	// over the plan's stable Dump rendering, so two runs with equal
	// hashes executed structurally identical schedules.
	Spec     *SpecInfo `json:"spec,omitempty"`
	PlanHash string    `json:"plan_hash,omitempty"`
	// Faults is the marshaled fault-injection plan, when one was active.
	Faults json.RawMessage `json:"faults,omitempty"`
	// ParentRunID and ResumeCycle record run lineage: a run resumed from a
	// checkpoint names the run whose checkpoint seeded it and the first
	// cycle it re-ran (always ≥ 1 — a checkpoint is cut after a completed
	// cycle, so a resume never restarts at cycle 0).
	ParentRunID string `json:"parent_run_id,omitempty"`
	ResumeCycle int    `json:"resume_cycle,omitempty"`
	// Outcome is "ok", "error" (with Error holding the message), or
	// "interrupted" (SIGINT/SIGTERM landed gracefully).
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
	// Headline numbers duplicated from the attached files so list/trend
	// work from manifests alone.
	Runtime     float64 `json:"runtime_s,omitempty"` // traced span end (virtual or wall)
	Verdicts    int     `json:"verdicts,omitempty"`
	Divergences int     `json:"divergences,omitempty"`
	Cycles      int     `json:"cycles,omitempty"`
	// Files maps each attached file name to "sha256:<hex>".
	Files map[string]string `json:"files,omitempty"`
}

// PlanHash returns the content address of a compiled plan: SHA-256 over
// its stable Dump rendering, as "sha256:<hex>".
func PlanHash(c *plan.Compiled) (string, error) {
	h := sha256.New()
	if err := c.Dump(h); err != nil {
		return "", fmt.Errorf("runlog: hashing plan: %w", err)
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}

// SpecSummary flattens a compiled plan into the manifest's spec section.
func SpecSummary(c *plan.Compiled) *SpecInfo {
	s := &SpecInfo{
		Algorithm: string(c.Spec.Algorithm),
		NSdx:      c.Spec.Dec.NSdx,
		NSdy:      c.Spec.Dec.NSdy,
		N:         c.Spec.N,
		L:         c.Spec.L,
		WorldSize: c.WorldSize(),
	}
	if c.Spec.Reader != nil {
		s.Reader = c.Spec.Reader.Name()
	}
	if br, ok := c.Spec.Reader.(plan.BarReader); ok {
		s.NCg = br.NCg
	}
	return s
}

// Archive is a run-record store rooted at one directory.
type Archive struct {
	dir string
}

// Open returns the archive rooted at dir, creating the directory
// structure on demand.
func Open(dir string) (*Archive, error) {
	if dir == "" {
		return nil, fmt.Errorf("runlog: empty archive directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "runs"), 0o755); err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	return &Archive{dir: dir}, nil
}

// Dir returns the archive's root directory.
func (a *Archive) Dir() string { return a.dir }

// RunDir returns the directory of run id (which need not exist yet).
func (a *Archive) RunDir(id string) string { return filepath.Join(a.dir, "runs", id) }

// fileHash content-addresses one attached file.
func fileHash(data []byte) string {
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// WriteRecord stores one run record: every attached file first, each
// hashed into m.Files, then the manifest. Returns the run directory.
func (a *Archive) WriteRecord(m *Manifest, files map[string][]byte) (string, error) {
	if m.RunID == "" {
		return "", fmt.Errorf("runlog: record without a run ID")
	}
	m.Schema = ManifestSchema
	dir := a.RunDir(m.RunID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("runlog: %w", err)
	}
	if len(files) > 0 && m.Files == nil {
		m.Files = make(map[string]string, len(files))
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if name == ManifestFile || name != filepath.ToSlash(filepath.Clean(name)) || strings.HasPrefix(name, "..") || filepath.IsAbs(name) {
			return "", fmt.Errorf("runlog: bad attached file name %q", name)
		}
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return "", fmt.Errorf("runlog: %w", err)
		}
		if err := os.WriteFile(path, files[name], 0o644); err != nil {
			return "", fmt.Errorf("runlog: %w", err)
		}
		m.Files[name] = fileHash(files[name])
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", fmt.Errorf("runlog: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), data, 0o644); err != nil {
		return "", fmt.Errorf("runlog: %w", err)
	}
	return dir, nil
}

// Record is one archived run loaded back from disk.
type Record struct {
	Manifest Manifest
	// Dir is the run's directory inside the archive.
	Dir string
	raw []byte
}

// RawManifest returns the manifest bytes exactly as stored.
func (r *Record) RawManifest() []byte { return r.raw }

// ReadFile loads one attached file, verifying its content address
// against the manifest.
func (r *Record) ReadFile(name string) ([]byte, error) {
	want, ok := r.Manifest.Files[name]
	if !ok {
		return nil, fmt.Errorf("runlog: run %s has no attached file %q", r.Manifest.RunID, name)
	}
	data, err := os.ReadFile(filepath.Join(r.Dir, filepath.FromSlash(name)))
	if err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	if got := fileHash(data); got != want {
		return nil, fmt.Errorf("runlog: run %s: %s content hash %s does not match manifest %s",
			r.Manifest.RunID, name, got, want)
	}
	return data, nil
}

// Has reports whether the record carries the named attached file.
func (r *Record) Has(name string) bool {
	_, ok := r.Manifest.Files[name]
	return ok
}

// Report loads and decodes the attached run report, or nil when the run
// archived none.
func (r *Record) Report() (*report.Report, error) {
	if !r.Has(ReportFile) {
		return nil, nil
	}
	data, err := r.ReadFile(ReportFile)
	if err != nil {
		return nil, err
	}
	var rep report.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("runlog: run %s: %s: %w", r.Manifest.RunID, ReportFile, err)
	}
	return &rep, nil
}

// RuntimeSummary loads and decodes the attached runtime-observability
// summary, or nil for records archived before runtime sampling existed.
func (r *Record) RuntimeSummary() (*runtimeobs.Summary, error) {
	if !r.Has(RuntimeFile) {
		return nil, nil
	}
	data, err := r.ReadFile(RuntimeFile)
	if err != nil {
		return nil, err
	}
	var sum runtimeobs.Summary
	if err := json.Unmarshal(data, &sum); err != nil {
		return nil, fmt.Errorf("runlog: run %s: %s: %w", r.Manifest.RunID, RuntimeFile, err)
	}
	return &sum, nil
}

// Counters loads the attached flat counter map ("kind/name/field" keys,
// the same scheme as report.ParseCountersCSV), or nil when absent.
func (r *Record) Counters() (map[string]float64, error) {
	if !r.Has(CountersFile) {
		return nil, nil
	}
	data, err := r.ReadFile(CountersFile)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("runlog: run %s: %s: %w", r.Manifest.RunID, CountersFile, err)
	}
	return out, nil
}

// Load reads the record of run id.
func (a *Archive) Load(id string) (*Record, error) {
	dir := a.RunDir(id)
	raw, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("runlog: run %s: %w", id, err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("runlog: run %s: manifest: %w", id, err)
	}
	if m.RunID != id {
		return nil, fmt.Errorf("runlog: manifest in %s names run %q", dir, m.RunID)
	}
	return &Record{Manifest: m, Dir: dir, raw: raw}, nil
}

// IDs lists the archived run IDs (directories under runs/ holding a
// manifest), sorted lexically — which, given the ID scheme's embedded
// timestamp per binary, is also start order per binary.
func (a *Archive) IDs() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(a.dir, "runs"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("runlog: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(a.dir, "runs", e.Name(), ManifestFile)); err == nil {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Resolve expands a run ID or unique ID prefix to the full archived ID.
func (a *Archive) Resolve(idOrPrefix string) (string, error) {
	ids, err := a.IDs()
	if err != nil {
		return "", err
	}
	var matches []string
	for _, id := range ids {
		if id == idOrPrefix {
			return id, nil
		}
		if strings.HasPrefix(id, idOrPrefix) {
			matches = append(matches, id)
		}
	}
	switch len(matches) {
	case 0:
		return "", fmt.Errorf("runlog: no archived run matches %q", idOrPrefix)
	case 1:
		return matches[0], nil
	default:
		return "", fmt.Errorf("runlog: %q is ambiguous (%s)", idOrPrefix, strings.Join(matches, ", "))
	}
}

// FlattenSnapshot converts a registry snapshot into the flat
// "kind/name/field" map the report layer uses — the JSON shape of
// counters.json. Histograms keep their count and sum; per-bucket rows
// stay in the CSV/Prometheus renderings only.
func FlattenSnapshot(s trace.Snapshot) map[string]float64 {
	out := map[string]float64{}
	for _, c := range s.Counters {
		out["counter/"+c.Name+"/value"] = c.Value
	}
	for _, g := range s.Gauges {
		out["gauge/"+g.Name+"/value"] = g.Value
		out["gauge/"+g.Name+"/high-water"] = g.HighWater
	}
	for _, h := range s.Histograms {
		out["histogram/"+h.Name+"/count"] = float64(h.Count)
		out["histogram/"+h.Name+"/sum"] = h.Sum
	}
	return out
}
