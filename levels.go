package senkf

import (
	"senkf/internal/baseline"
	"senkf/internal/core"
	"senkf/internal/ensio"
	"senkf/internal/workload"
)

// MultiLevelProblem is the 3-D assimilation problem: member files carry
// several vertical levels interleaved per grid point (the paper's h =
// levels × 8 bytes), each level with its own observation network.
type MultiLevelProblem = core.MultiLevelProblem

// GenerateTruthLevels produces one deterministic truth field per vertical
// level.
func GenerateTruthLevels(m Mesh, spec FieldSpec, levels int, seed uint64) ([][]float64, error) {
	return workload.TruthLevels(m, spec, levels, seed)
}

// GenerateEnsembleLevels produces n members of a multi-level state:
// result[k][l] is member k's field at level l.
func GenerateEnsembleLevels(m Mesh, truths [][]float64, n int, spread float64, seed uint64) ([][][]float64, error) {
	return workload.EnsembleLevels(m, truths, n, spread, seed)
}

// WriteEnsembleLevels stores a multi-level ensemble as member files with
// level-interleaved layout: a latitude bar carries all levels contiguously,
// so one addressing operation still fetches a complete 3-D bar.
func WriteEnsembleLevels(dir string, m Mesh, members [][][]float64) ([]string, error) {
	return ensio.WriteEnsembleLevels(dir, m, members)
}

// RunSEnKFMultiLevel executes S-EnKF over a multi-level ensemble: the I/O
// ranks read each stage's bar once for all levels (shared addressing), the
// compute ranks assimilate level by level with 2-D localization. Returns
// the analysis as [level][member][]field. It is a thin spec wrapper: the
// same compiled plan RunSEnKF executes, with the level dimension set, runs
// on the one shared engine (ExecutePlanLevels).
func RunSEnKFMultiLevel(p MultiLevelProblem, plan Plan) ([][][]float64, error) {
	return core.RunSEnKFMultiLevel(p, plan)
}

// RunPEnKFMultiLevel executes the block-reading baseline over a multi-level
// ensemble — every rank block-reads its expansion of every level from every
// member file and assimilates level by level. Like RunSEnKFMultiLevel it is
// a thin spec wrapper over the shared engine.
func RunPEnKFMultiLevel(p MultiLevelProblem, dec Decomposition) ([][][]float64, error) {
	return baseline.RunPEnKFMultiLevel(p, dec)
}

// ExecutePlanLevels runs any compiled plan on the real substrate and
// returns the analysis as [level][member][]field — the engine entry point
// the algorithm wrappers (single-level and multilevel alike) delegate to.
func ExecutePlanLevels(p Problem, c *CompiledPlan) ([][][]float64, error) {
	return core.ExecutePlanLevels(p, c)
}
