package senkf

import (
	"senkf/internal/core"
	"senkf/internal/ensio"
	"senkf/internal/workload"
)

// MultiLevelProblem is the 3-D assimilation problem: member files carry
// several vertical levels interleaved per grid point (the paper's h =
// levels × 8 bytes), each level with its own observation network.
type MultiLevelProblem = core.MultiLevelProblem

// GenerateTruthLevels produces one deterministic truth field per vertical
// level.
func GenerateTruthLevels(m Mesh, spec FieldSpec, levels int, seed uint64) ([][]float64, error) {
	return workload.TruthLevels(m, spec, levels, seed)
}

// GenerateEnsembleLevels produces n members of a multi-level state:
// result[k][l] is member k's field at level l.
func GenerateEnsembleLevels(m Mesh, truths [][]float64, n int, spread float64, seed uint64) ([][][]float64, error) {
	return workload.EnsembleLevels(m, truths, n, spread, seed)
}

// WriteEnsembleLevels stores a multi-level ensemble as member files with
// level-interleaved layout: a latitude bar carries all levels contiguously,
// so one addressing operation still fetches a complete 3-D bar.
func WriteEnsembleLevels(dir string, m Mesh, members [][][]float64) ([]string, error) {
	return ensio.WriteEnsembleLevels(dir, m, members)
}

// RunSEnKFMultiLevel executes S-EnKF over a multi-level ensemble: the I/O
// ranks read each stage's bar once for all levels (shared addressing), the
// compute ranks assimilate level by level with 2-D localization. Returns
// the analysis as [level][member][]field.
func RunSEnKFMultiLevel(p MultiLevelProblem, plan Plan) ([][][]float64, error) {
	return core.RunSEnKFMultiLevel(p, plan)
}
