// Facade over internal/ckpt and internal/cycle's checkpoint machinery:
// crash-consistent per-cycle checkpoints, resume (with fallback past
// corrupted checkpoints), and elastic ensemble resizing between runs.
package senkf

import (
	"senkf/internal/ckpt"
	"senkf/internal/cycle"
)

// Checkpoint/restart types.
type (
	// CycleState is the complete between-cycles state of a cycled
	// experiment; persisting it and resuming reproduces the uninterrupted
	// run bit for bit.
	CycleState = cycle.State
	// CycleHook observes the state after each completed cycle.
	CycleHook = cycle.Hook
	// Checkpointer cuts crash-consistent checkpoints through the per-cycle
	// hook.
	Checkpointer = cycle.Checkpointer
	// LoadedCheckpoint is one validated checkpoint read back from disk.
	LoadedCheckpoint = ckpt.Loaded
	// SkippedCheckpoint records a checkpoint rejected during Latest's scan
	// (corrupt, truncated, or torn) and why.
	SkippedCheckpoint = ckpt.Skipped
)

// RunCyclesFrom continues a cycled experiment from st until totalCycles
// cycles have completed; hook (may be nil) fires after each cycle.
func RunCyclesFrom(c CycleConfig, st CycleState, totalCycles int, analyze Analyzer, onCycle func(CycleStats), hook CycleHook) ([]CycleStats, error) {
	return cycle.RunFrom(c, st, totalCycles, analyze, onCycle, hook)
}

// LatestCheckpoint scans dir for the newest valid checkpoint, falling back
// past corrupted or torn ones (returned in skipped). A missing or empty
// directory yields (nil, nil, nil).
func LatestCheckpoint(dir string) (*LoadedCheckpoint, []SkippedCheckpoint, error) {
	return ckpt.Latest(dir)
}

// RestoreCheckpoint converts a loaded checkpoint into a resumable state.
func RestoreCheckpoint(l *LoadedCheckpoint) (CycleState, error) {
	return cycle.Restore(l)
}

// ResizeEnsemble deterministically grows or shrinks an ensemble while
// preserving its mean point-wise variance — the elastic-resume primitive.
func ResizeEnsemble(m Mesh, fields [][]float64, newN int, seed uint64) ([][]float64, error) {
	return ckpt.ResizeEnsemble(m, fields, newN, seed)
}

// DigestCheckpointConfig content-addresses a config map the way checkpoint
// manifests do, so binaries can verify resume compatibility.
func DigestCheckpointConfig(cfg map[string]string) string {
	return ckpt.DigestConfig(cfg)
}
