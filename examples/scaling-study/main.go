// Scaling study: the paper's headline experiment (Figure 13) — strong
// scaling of P-EnKF versus auto-tuned S-EnKF on the simulated machine. By
// default the reduced-scale suite runs in seconds; pass -paper to run the
// full 2,000–12,000-processor sweep over the 0.1° problem.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"senkf"
)

func main() {
	log.SetFlags(0)
	paper := flag.Bool("paper", false, "run at the paper's scale (2,000-12,000 simulated processors)")
	flag.Parse()

	suite := senkf.QuickFigures()
	if *paper {
		suite = senkf.PaperFigures()
	}

	fig13, err := suite.Fig13()
	if err != nil {
		log.Fatal(err)
	}
	if err := fig13.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// The mechanism behind the headline: Figure 1's growing I/O share in
	// P-EnKF, and Figure 11's sustained overlap in S-EnKF.
	fig01, err := suite.Fig01()
	if err != nil {
		log.Fatal(err)
	}
	if err := fig01.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fig11, err := suite.Fig11()
	if err != nil {
		log.Fatal(err)
	}
	if err := fig11.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
