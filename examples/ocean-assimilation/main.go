// Ocean assimilation: the workload the paper's introduction motivates — a
// gridded ocean state reconstructed from a sparse observation network. The
// example compares the two local solvers (ensemble-space vs the
// modified-Cholesky estimator of P-EnKF), shows the effect of the
// localization radius, and demonstrates that all three parallel
// implementations (L-EnKF, P-EnKF, S-EnKF) compute identical analyses.
package main

import (
	"fmt"
	"log"
	"os"

	"senkf"
)

func main() {
	log.SetFlags(0)

	ps := senkf.LaptopScale
	mesh, err := senkf.NewMesh(ps.NX, ps.NY)
	if err != nil {
		log.Fatal(err)
	}
	truth := senkf.GenerateTruth(mesh, senkf.DefaultFieldSpec, ps.Seed)
	background, err := senkf.GenerateEnsemble(mesh, truth, ps.Members, ps.Spread, ps.Seed)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "senkf-ocean")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if _, err := senkf.WriteEnsemble(dir, mesh, background); err != nil {
		log.Fatal(err)
	}
	// A sparse network: the situation where large radii of influence
	// matter (§1), here every 4th longitude and 3rd latitude.
	net, err := senkf.NewStridedNetwork(mesh, truth, 4, 3, 0.01, ps.Seed)
	if err != nil {
		log.Fatal(err)
	}
	bgRMSE := senkf.RMSE(senkf.EnsembleMean(background), truth)
	fmt.Printf("ocean state %dx%d, %d members, %d observations, background RMSE %.4f\n\n",
		ps.NX, ps.NY, ps.Members, net.Len(), bgRMSE)

	// 1. Solver comparison across localization radii.
	fmt.Println("analysis RMSE by solver and localization radius:")
	fmt.Println("  radius (ξ,η) | ensemble-space | modified-Cholesky | ETKF")
	for _, r := range [][2]int{{2, 1}, {4, 2}, {8, 4}} {
		radius, err := senkf.NewRadius(r[0], r[1])
		if err != nil {
			log.Fatal(err)
		}
		row := fmt.Sprintf("  (%d,%d)       |", r[0], r[1])
		for _, solver := range []senkf.Solver{senkf.SolverEnsembleSpace, senkf.SolverModifiedCholesky, senkf.SolverETKF} {
			cfg := senkf.Config{Mesh: mesh, Radius: radius, N: ps.Members, Seed: ps.Seed, Solver: solver}
			analysis, err := senkf.SerialReference(cfg, background, net)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %14.4f |", senkf.RMSE(senkf.EnsembleMean(analysis), truth))
		}
		fmt.Println(row)
	}

	// 2. The three parallel implementations agree exactly.
	radius, err := senkf.NewRadius(ps.Xi, ps.Eta)
	if err != nil {
		log.Fatal(err)
	}
	cfg := senkf.Config{Mesh: mesh, Radius: radius, N: ps.Members, Seed: ps.Seed}
	dec, err := senkf.NewDecomposition(mesh, 4, 4, radius)
	if err != nil {
		log.Fatal(err)
	}
	problem := senkf.Problem{Cfg: cfg, Dir: dir, Net: net}

	sen, err := senkf.RunSEnKF(problem, senkf.Plan{Dec: dec, L: 3, NCg: 4})
	if err != nil {
		log.Fatal(err)
	}
	pen, err := senkf.RunPEnKF(problem, dec)
	if err != nil {
		log.Fatal(err)
	}
	lnk, err := senkf.RunLEnKF(problem, dec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparallel agreement (max abs diff):\n")
	fmt.Printf("  S-EnKF vs P-EnKF: %g\n", maxDiff(sen, pen))
	fmt.Printf("  S-EnKF vs L-EnKF: %g\n", maxDiff(sen, lnk))
	fmt.Printf("analysis RMSE: %.4f (from %.4f)\n",
		senkf.RMSE(senkf.EnsembleMean(sen), truth), bgRMSE)
}

func maxDiff(a, b [][]float64) float64 {
	var m float64
	for k := range a {
		for i := range a[k] {
			d := a[k][i] - b[k][i]
			if d < 0 {
				d = -d
			}
			if d > m {
				m = d
			}
		}
	}
	return m
}
