// Multi-level: a 3-D ocean state (several vertical levels per grid point,
// like the 30 levels behind the paper's h = 240 bytes) assimilated by
// S-EnKF. The point of the level-interleaved file layout is that an I/O
// rank's bar read fetches *all* levels of its rows with a single
// disk-addressing operation — the bar-reading co-design carries over to 3-D
// states unchanged, while block reading would pay one (levels-times
// heavier) seek per row.
package main

import (
	"fmt"
	"log"
	"os"

	"senkf"
)

func main() {
	log.SetFlags(0)

	const levels = 6
	const members = 16
	const seed = 77

	mesh, err := senkf.NewMesh(48, 24)
	if err != nil {
		log.Fatal(err)
	}
	radius, err := senkf.NewRadius(3, 2)
	if err != nil {
		log.Fatal(err)
	}

	truths, err := senkf.GenerateTruthLevels(mesh, senkf.DefaultFieldSpec, levels, seed)
	if err != nil {
		log.Fatal(err)
	}
	ensemble, err := senkf.GenerateEnsembleLevels(mesh, truths, members, 1.5, seed)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "senkf-multilevel")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if _, err := senkf.WriteEnsembleLevels(dir, mesh, ensemble); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d members x %d levels (%d x %d grid, h = %d bytes per point)\n",
		members, levels, mesh.NX, mesh.NY, 8*levels)

	// Each level has its own observation network (e.g. different
	// instruments at different depths).
	nets := make([]*senkf.Network, levels)
	for l := 0; l < levels; l++ {
		nets[l], err = senkf.NewStridedNetwork(mesh, truths[l], 2+l%2, 2, 0.01, seed+uint64(l))
		if err != nil {
			log.Fatal(err)
		}
	}

	cfg := senkf.Config{Mesh: mesh, Radius: radius, N: members, Seed: seed}
	dec, err := senkf.NewDecomposition(mesh, 4, 2, radius)
	if err != nil {
		log.Fatal(err)
	}

	// A multilevel run is not a separate code path: it is the same compiled
	// plan the single-level S-EnKF executes, with the level dimension set in
	// the spec. RunSEnKFMultiLevel is a thin wrapper that compiles this spec
	// and hands it to the one shared engine.
	cp, err := senkf.CompilePlan(senkf.SEnKFSpec(dec, members, 3, 2).WithLevels(levels))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled plan: %s\n", cp)

	problem := senkf.MultiLevelProblem{Cfg: cfg, Dir: dir, Nets: nets}
	analysis, err := senkf.RunSEnKFMultiLevel(problem, senkf.Plan{Dec: dec, L: 3, NCg: 2})
	if err != nil {
		log.Fatal(err)
	}

	// The block-reading baseline runs the same levels through the same
	// engine — only the compiled reading strategy differs — so the two
	// analyses agree bit for bit.
	baseline, err := senkf.RunPEnKFMultiLevel(problem, dec)
	if err != nil {
		log.Fatal(err)
	}
	for l := range analysis {
		for k := range analysis[l] {
			for i := range analysis[l][k] {
				if analysis[l][k][i] != baseline[l][k][i] {
					log.Fatalf("S-EnKF and P-EnKF disagree at level %d member %d point %d", l, k, i)
				}
			}
		}
	}
	fmt.Println("S-EnKF and the P-EnKF baseline agree bit for bit on every level")

	fmt.Println("\nlevel | observations | background RMSE | analysis RMSE")
	for l := 0; l < levels; l++ {
		bg := make([][]float64, members)
		for k := 0; k < members; k++ {
			bg[k] = ensemble[k][l]
		}
		before := senkf.RMSE(senkf.EnsembleMean(bg), truths[l])
		after := senkf.RMSE(senkf.EnsembleMean(analysis[l]), truths[l])
		fmt.Printf("%5d | %12d | %15.4f | %13.4f\n", l, nets[l].Len(), before, after)
	}
}
