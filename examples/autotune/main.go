// Auto-tuning walkthrough: the §4.4 machinery step by step. For a fixed
// compute cost C2, the minimal first-stage acquisition time T1 falls as
// more I/O processors C1 are spent (Figure 12); the earnings rate (Eq. 13)
// quantifies the benefit of each extra processor, and the economic
// condition (Eq. 14) stops when more spending no longer pays. Algorithm 2
// then sweeps C2 to pick the overall configuration, which this example
// validates against a discrete-event simulation of the tuned schedule.
package main

import (
	"fmt"
	"log"

	"senkf"
)

func main() {
	log.SetFlags(0)
	machine := senkf.DefaultMachine()
	p := machine.P
	const np = 8000
	const eps = 0.001

	// 1. The T1(C1) trade-off at a fixed compute cost.
	const c2 = 2000
	opts := senkf.PaperFigureOptions()
	opts.Fig12C2 = c2
	suite := senkf.NewFigureSuite(opts)
	fig, err := suite.Fig12()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T1 vs C1 at C2 = %d (model and simulated measurement):\n", c2)
	for _, s := range fig.Series {
		fmt.Printf("  %s:", s.Label)
		for i := range s.X {
			fmt.Printf(" (%.0f, %.2fs)", s.X[i], s.Y[i])
		}
		fmt.Println()
	}
	for _, n := range fig.Notes {
		fmt.Println("  " + n)
	}

	// 2. Algorithm 2 over the full budget, with the layer and group counts
	//    capped to schedulable values.
	tuned, ok := senkf.AutoTuneConstrained(p, np, eps, senkf.TuneConstraints{MaxL: 12, MaxNCg: 12})
	if !ok {
		log.Fatal("auto-tuner found no configuration")
	}
	fmt.Printf("\nAlgorithm 2 for np=%d: %v  (C1=%d I/O + C2=%d compute, model %.1fs)\n",
		np, tuned.Choice, tuned.C1, tuned.C2, tuned.TTotal)

	// 3. Validate the tuned configuration in simulation against neighbours.
	fmt.Println("\nsimulated runtime of the tuned choice vs perturbed choices:")
	candidates := []senkf.Choice{tuned.Choice}
	half := tuned.Choice
	half.NCg = max(1, half.NCg/2)
	candidates = append(candidates, half)
	one := tuned.Choice
	one.L = 1
	candidates = append(candidates, one)
	for _, ch := range candidates {
		res, err := senkf.SimulateSEnKF(machine, ch)
		if err != nil {
			fmt.Printf("  %v: infeasible (%v)\n", ch, err)
			continue
		}
		marker := ""
		if ch == tuned.Choice {
			marker = "  <- tuned"
		}
		fmt.Printf("  %v: %.1fs (first stage %.1fs, overlap %.0f%%)%s\n",
			ch, res.Runtime, res.FirstStage, 100*res.OverlapFraction, marker)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
