// Cycling: sequential data assimilation — the operational context the
// paper's introduction describes. An ensemble of ocean-like states is
// integrated forward with an advection–diffusion model under stochastic
// model error; every cycle, observations of the evolving truth are
// assimilated by the *real parallel S-EnKF* (member files on disk, C1 I/O
// ranks + C2 compute ranks, multi-stage overlap), and the analysis seeds
// the next forecast. A free-running ensemble that never assimilates is the
// control.
package main

import (
	"fmt"
	"log"
	"os"

	"senkf"
)

func main() {
	log.SetFlags(0)

	mesh, err := senkf.NewMesh(48, 24)
	if err != nil {
		log.Fatal(err)
	}
	radius, err := senkf.NewRadius(3, 2)
	if err != nil {
		log.Fatal(err)
	}
	// A westerly drift with weak diffusion, stepped 3x per cycle.
	fm, err := senkf.NewForwardModel(mesh, 0.4, 0.2, 0.02, 1.0)
	if err != nil {
		log.Fatal(err)
	}

	const members = 20
	const seed = 2019
	truth := senkf.GenerateTruth(mesh, senkf.DefaultFieldSpec, seed)
	ensemble, err := senkf.GenerateEnsemble(mesh, truth, members, 1.5, seed)
	if err != nil {
		log.Fatal(err)
	}

	cfg := senkf.CycleConfig{
		Enkf: senkf.Config{
			Mesh: mesh, Radius: radius, N: members,
			Inflation: 1.1, // sustain spread across cycles
		},
		Model:         fm,
		StepsPerCycle: 3,
		ObsStrideX:    2, ObsStrideY: 2,
		ObsVar:       1e-4,
		ModelErrorSD: 0.2, // imperfect ensemble model
		Seed:         seed,
	}

	dir, err := os.MkdirTemp("", "senkf-cycling")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dec, err := senkf.NewDecomposition(mesh, 4, 2, radius)
	if err != nil {
		log.Fatal(err)
	}
	analyzer := senkf.SEnKFAnalyzer(dir, dec, 3, 2)

	const cycles = 10
	history, err := senkf.RunCycles(cfg, truth, ensemble, cycles, analyzer)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d forecast-analysis cycles, S-EnKF analysis each cycle (%d+%d ranks)\n\n",
		cycles, dec.SubDomains(), 2*dec.NSdy)
	fmt.Println("cycle | background RMSE | analysis RMSE | free-run RMSE | spread")
	for _, st := range history {
		fmt.Printf("%5d | %15.4f | %13.4f | %13.4f | %.4f\n",
			st.Cycle, st.BackgroundRMSE, st.AnalysisRMSE, st.FreeRMSE, st.Spread)
	}
	last := history[len(history)-1]
	fmt.Printf("\nafter %d cycles: assimilation %.4f vs free run %.4f (%.1fx better)\n",
		cycles, last.AnalysisRMSE, last.FreeRMSE, last.FreeRMSE/last.AnalysisRMSE)
}
