// Quickstart: generate a synthetic ocean ensemble, assimilate observations
// with S-EnKF (concurrent-group bar reading + multi-stage overlapped
// analysis), and verify the result against the serial reference.
package main

import (
	"fmt"
	"log"
	"os"

	"senkf"
)

func main() {
	log.SetFlags(0)

	// 1. A small latitude–longitude mesh and a localization radius:
	//    every grid point is updated from observations within a
	//    (2ξ+1) × (2η+1) local box.
	mesh, err := senkf.NewMesh(96, 48)
	if err != nil {
		log.Fatal(err)
	}
	radius, err := senkf.NewRadius(4, 2)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Synthetic truth and a 16-member background ensemble, written to
	//    disk as one file per member — the input format of all parallel
	//    implementations.
	const members = 16
	const seed = 42
	truth := senkf.GenerateTruth(mesh, senkf.DefaultFieldSpec, seed)
	background, err := senkf.GenerateEnsemble(mesh, truth, members, 1.5, seed)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "senkf-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if _, err := senkf.WriteEnsemble(dir, mesh, background); err != nil {
		log.Fatal(err)
	}

	// 3. An observation network: every 3rd point observed with small error.
	net, err := senkf.NewStridedNetwork(mesh, truth, 3, 3, 0.01, seed)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run S-EnKF: a 4×2 compute decomposition with L = 4 stages and
	//    n_cg = 2 concurrent I/O groups (8 compute ranks + 4 I/O ranks).
	cfg := senkf.Config{Mesh: mesh, Radius: radius, N: members, Seed: seed}
	dec, err := senkf.NewDecomposition(mesh, 4, 2, radius)
	if err != nil {
		log.Fatal(err)
	}
	problem := senkf.Problem{Cfg: cfg, Dir: dir, Net: net}
	plan := senkf.Plan{Dec: dec, L: 4, NCg: 2}
	analysis, err := senkf.RunSEnKF(problem, plan)
	if err != nil {
		log.Fatal(err)
	}

	// 5. The parallel result matches the serial reference exactly, and the
	//    assimilation pulled the ensemble towards the truth.
	reference, err := senkf.SerialReference(cfg, background, net)
	if err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for k := range reference {
		for i := range reference[k] {
			if d := abs(analysis[k][i] - reference[k][i]); d > maxDiff {
				maxDiff = d
			}
		}
	}
	fmt.Printf("S-EnKF ranks: %d compute + %d I/O\n", plan.ComputeRanks(), plan.IORanks())
	fmt.Printf("max |S-EnKF - serial reference| = %g (exact reproduction)\n", maxDiff)
	fmt.Printf("ensemble-mean RMSE vs truth: %.4f -> %.4f\n",
		senkf.RMSE(senkf.EnsembleMean(background), truth),
		senkf.RMSE(senkf.EnsembleMean(analysis), truth))
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
