#!/usr/bin/env bash
# Enforce the plan-layer import boundary.
#
# internal/plan is the substrate-agnostic description of the algorithms:
# both the real engine (internal/core on mpi+ensio) and the simulated
# machine (internal/schedule on sim+parfs) interpret its compiled plans.
# If plan ever imports a substrate package the "one schedule, two
# substrates" invariant collapses into a dependency cycle, so CI pins it.
set -euo pipefail

cd "$(dirname "$0")/.."

forbidden='senkf/internal/(mpi|ensio|sim|parfs)$'

deps=$(go list -deps senkf/internal/plan)

if bad=$(grep -E "$forbidden" <<<"$deps"); then
    echo "FAIL: senkf/internal/plan must not depend on any substrate package:" >&2
    echo "$bad" >&2
    exit 1
fi

# internal/monitor is the live observability layer: it folds the trace
# stream against compiled plans and Eq. 7-10 budgets, so it must build on
# plan, trace and costmodel — but it watches both substrates through the
# event stream alone, duck-typing their error shapes, so it must never
# import one (or it could only monitor that substrate).
deps=$(go list -deps senkf/internal/monitor)

if bad=$(grep -E "$forbidden" <<<"$deps"); then
    echo "FAIL: senkf/internal/monitor must not depend on any substrate package:" >&2
    echo "$bad" >&2
    exit 1
fi

for need in senkf/internal/plan senkf/internal/trace senkf/internal/costmodel senkf/internal/runtimeobs; do
    if ! grep -qx "$need" <<<"$deps"; then
        echo "FAIL: senkf/internal/monitor no longer builds on $need" >&2
        exit 1
    fi
done

# internal/runtimeobs sits below the plan layer: pprof labels, the
# runtime/metrics sampler and hot-stage attribution are pure
# stdlib + trace machinery that plan (Problem.Prof), both engines, the
# monitor and the ledger all consume. It must import nothing above
# trace — especially not plan or a substrate — or the label set could
# not ride inside plan.Problem without a cycle.
deps=$(go list -deps senkf/internal/runtimeobs)
if bad=$(grep -E 'senkf/internal/(mpi|ensio|sim|parfs|plan|monitor|runlog|report|core|schedule|cycle)$' <<<"$deps"); then
    echo "FAIL: senkf/internal/runtimeobs must sit below the plan layer (stdlib + trace only):" >&2
    echo "$bad" >&2
    exit 1
fi
if ! grep -qx 'senkf/internal/trace' <<<"$deps"; then
    echo "FAIL: senkf/internal/runtimeobs no longer publishes through senkf/internal/trace" >&2
    exit 1
fi

# internal/runlog is the persistent run ledger: it archives what every
# substrate produced (trace, counters, report, monitor state), so like the
# monitor it must build on plan, trace, costmodel and report — and must
# never import a substrate, or the ledger could only describe that
# substrate's runs. internal/report stays substrate-free for the same
# reason (the bench collector, which does need the simulator, lives in
# report/bench above it).
for pkg in senkf/internal/runlog senkf/internal/report; do
    deps=$(go list -deps "$pkg")
    if bad=$(grep -E "$forbidden" <<<"$deps"); then
        echo "FAIL: $pkg must not depend on any substrate package:" >&2
        echo "$bad" >&2
        exit 1
    fi
done

deps=$(go list -deps senkf/internal/runlog)
for need in senkf/internal/plan senkf/internal/trace senkf/internal/costmodel senkf/internal/report; do
    if ! grep -qx "$need" <<<"$deps"; then
        echo "FAIL: senkf/internal/runlog no longer builds on $need" >&2
        exit 1
    fi
done

# internal/ckpt is the checkpoint store: it persists cycled state through
# ensio member files, so it must build on ensio — but it must never import
# mpi, sim or parfs (a checkpoint is pure data; reading one must not drag
# in an execution substrate), nor the cycle loop above it (cycle imports
# ckpt, not the reverse).
deps=$(go list -deps senkf/internal/ckpt)
if bad=$(grep -E 'senkf/internal/(mpi|sim|parfs|cycle)$' <<<"$deps"); then
    echo "FAIL: senkf/internal/ckpt must stay pure data (ensio + grid + workload only):" >&2
    echo "$bad" >&2
    exit 1
fi
if ! grep -qx 'senkf/internal/ensio' <<<"$deps"; then
    echo "FAIL: senkf/internal/ckpt no longer persists through senkf/internal/ensio" >&2
    exit 1
fi

# The engines must sit above the plan layer, not beside it: core and
# schedule each depend on plan, and plan on neither.
for eng in senkf/internal/core senkf/internal/schedule; do
    if ! go list -deps "$eng" | grep -qx 'senkf/internal/plan'; then
        echo "FAIL: $eng no longer builds on senkf/internal/plan" >&2
        exit 1
    fi
done

# The level dimension lives in the plan layer, not beside it: Spec.Levels
# and plan.Tag are the single source of level shape and message identity,
# so no engine may keep a private multilevel path. If any file outside
# internal/plan mentions "mlTag" or defines its own stage-tag arithmetic,
# a bespoke loop has crept back in.
if bad=$(grep -rn 'mlTag\|func observeML\|func runComputeML\|func runIOML' \
        --include='*.go' internal cmd examples 2>/dev/null | grep -v '_test.go'); then
    echo "FAIL: bespoke multilevel path re-introduced outside the plan layer:" >&2
    echo "$bad" >&2
    exit 1
fi

echo "OK: plan, monitor, report and runlog layers are substrate-free; runtimeobs sits below plan; ckpt builds on ensio only; core and schedule build on plan; no bespoke multilevel paths"
