#!/usr/bin/env bash
# Enforce the plan-layer import boundary.
#
# internal/plan is the substrate-agnostic description of the algorithms:
# both the real engine (internal/core on mpi+ensio) and the simulated
# machine (internal/schedule on sim+parfs) interpret its compiled plans.
# If plan ever imports a substrate package the "one schedule, two
# substrates" invariant collapses into a dependency cycle, so CI pins it.
set -euo pipefail

cd "$(dirname "$0")/.."

forbidden='senkf/internal/(mpi|ensio|sim|parfs)$'

deps=$(go list -deps senkf/internal/plan)

if bad=$(grep -E "$forbidden" <<<"$deps"); then
    echo "FAIL: senkf/internal/plan must not depend on any substrate package:" >&2
    echo "$bad" >&2
    exit 1
fi

# The engines must sit above the plan layer, not beside it: core and
# schedule each depend on plan, and plan on neither.
for eng in senkf/internal/core senkf/internal/schedule; do
    if ! go list -deps "$eng" | grep -qx 'senkf/internal/plan'; then
        echo "FAIL: $eng no longer builds on senkf/internal/plan" >&2
        exit 1
    fi
done

echo "OK: plan layer is substrate-free; core and schedule both build on it"
