package senkf

import (
	"strings"
	"testing"
)

func TestFacadeCycling(t *testing.T) {
	mesh, err := NewMesh(24, 12)
	if err != nil {
		t.Fatal(err)
	}
	radius, err := NewRadius(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := NewForwardModel(mesh, 0.3, 0.2, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	const members = 12
	truth := GenerateTruth(mesh, DefaultFieldSpec, 5)
	ensemble, err := GenerateEnsemble(mesh, truth, members, 1.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := CycleConfig{
		Enkf:          Config{Mesh: mesh, Radius: radius, N: members, Inflation: 1.1},
		Model:         fm,
		StepsPerCycle: 2,
		ObsStrideX:    2, ObsStrideY: 2,
		ObsVar:       1e-4,
		ModelErrorSD: 0.2,
		Seed:         5,
	}
	hist, err := RunCycles(cfg, truth, ensemble, 4, SerialAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 4 {
		t.Fatalf("got %d cycles", len(hist))
	}
	last := hist[len(hist)-1]
	if !(last.AnalysisRMSE < last.FreeRMSE) {
		t.Errorf("assimilation (%g) not better than free run (%g)", last.AnalysisRMSE, last.FreeRMSE)
	}
	// Parallel analyzer through the facade produces the identical history.
	dec, err := NewDecomposition(mesh, 4, 2, radius)
	if err != nil {
		t.Fatal(err)
	}
	hist2, err := RunCycles(cfg, truth, ensemble, 4, SEnKFAnalyzer(t.TempDir(), dec, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range hist {
		if hist[i] != hist2[i] {
			t.Fatalf("cycle %d: serial %+v vs S-EnKF %+v", i, hist[i], hist2[i])
		}
	}
}

func TestFacadeMultiLevel(t *testing.T) {
	mesh, err := NewMesh(24, 12)
	if err != nil {
		t.Fatal(err)
	}
	radius, err := NewRadius(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const levels = 2
	const members = 10
	truths, err := GenerateTruthLevels(mesh, DefaultFieldSpec, levels, 9)
	if err != nil {
		t.Fatal(err)
	}
	ensemble, err := GenerateEnsembleLevels(mesh, truths, members, 1.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := WriteEnsembleLevels(dir, mesh, ensemble); err != nil {
		t.Fatal(err)
	}
	nets := make([]*Network, levels)
	for l := range nets {
		nets[l], err = NewStridedNetwork(mesh, truths[l], 2, 2, 0.01, 9+uint64(l))
		if err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{Mesh: mesh, Radius: radius, N: members, Seed: 9}
	dec, err := NewDecomposition(mesh, 4, 2, radius)
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := RunSEnKFMultiLevel(
		MultiLevelProblem{Cfg: cfg, Dir: dir, Nets: nets},
		Plan{Dec: dec, L: 2, NCg: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(analysis) != levels {
		t.Fatalf("got %d levels", len(analysis))
	}
	for l := 0; l < levels; l++ {
		bg := make([][]float64, members)
		for k := 0; k < members; k++ {
			bg[k] = ensemble[k][l]
		}
		ref, err := SerialReference(cfg, bg, nets[l])
		if err != nil {
			t.Fatal(err)
		}
		for k := range ref {
			for i := range ref[k] {
				if analysis[l][k][i] != ref[k][i] {
					t.Fatalf("level %d: mismatch vs per-level reference", l)
				}
			}
		}
	}
}

func TestFacadeOffGridNetwork(t *testing.T) {
	mesh, err := NewMesh(16, 12)
	if err != nil {
		t.Fatal(err)
	}
	truth := GenerateTruth(mesh, DefaultFieldSpec, 3)
	net, err := NewOffGridNetwork(mesh, truth, 20, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if net.Len() != 20 {
		t.Fatalf("got %d observations", net.Len())
	}
}

func TestFacadeETKFSolver(t *testing.T) {
	ps := TestScale
	mesh, _ := NewMesh(ps.NX, ps.NY)
	radius, _ := NewRadius(ps.Xi, ps.Eta)
	truth := GenerateTruth(mesh, DefaultFieldSpec, ps.Seed)
	bg, err := GenerateEnsemble(mesh, truth, ps.Members, ps.Spread, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewStridedNetwork(mesh, truth, 2, 2, 0.01, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mesh: mesh, Radius: radius, N: ps.Members, Seed: ps.Seed, Solver: SolverETKF}
	xa, err := SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	if !(RMSE(EnsembleMean(xa), truth) < RMSE(EnsembleMean(bg), truth)) {
		t.Error("ETKF via facade did not reduce RMSE")
	}
}

func TestFacadeAblations(t *testing.T) {
	suite := QuickFigures()
	np := suite.O.ProcCounts[len(suite.O.ProcCounts)-1]
	abs, err := suite.Ablations(np)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteAblations(&sb, np, abs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "S-EnKF") {
		t.Error("ablation table missing the full design")
	}
}

func TestFacadeSmoothNoise(t *testing.T) {
	mesh, _ := NewMesh(16, 8)
	a := GenerateSmoothNoise(mesh, 0.5, 1, 2, 3)
	b := GenerateSmoothNoise(mesh, 0.5, 1, 2, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("smooth noise not deterministic")
		}
	}
	c := GenerateSmoothNoise(mesh, 0.5, 1, 2, 4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different keys produced identical noise")
	}
}
