package senkf

import (
	"io"
	"testing"
)

// buildProblem assembles a complete test problem via the public API only.
func buildProblem(t *testing.T) (Problem, Decomposition, [][]float64, []float64) {
	t.Helper()
	ps := TestScale
	mesh, err := NewMesh(ps.NX, ps.NY)
	if err != nil {
		t.Fatal(err)
	}
	truth := GenerateTruth(mesh, DefaultFieldSpec, ps.Seed)
	members, err := GenerateEnsemble(mesh, truth, ps.Members, ps.Spread, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := WriteEnsemble(dir, mesh, members); err != nil {
		t.Fatal(err)
	}
	net, err := NewStridedNetwork(mesh, truth, ps.ObsStride, ps.ObsStride, ps.ObsVar, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	radius, err := NewRadius(ps.Xi, ps.Eta)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mesh: mesh, Radius: radius, N: ps.Members, Seed: ps.Seed}
	dec, err := NewDecomposition(mesh, 4, 2, radius)
	if err != nil {
		t.Fatal(err)
	}
	return Problem{Cfg: cfg, Dir: dir, Net: net}, dec, members, truth
}

func TestPublicAPIEndToEnd(t *testing.T) {
	p, dec, members, truth := buildProblem(t)
	ref, err := SerialReference(p.Cfg, members, p.Net)
	if err != nil {
		t.Fatal(err)
	}
	// All three parallel paths through the facade agree with the reference.
	sen, err := RunSEnKF(p, Plan{Dec: dec, L: 3, NCg: 2})
	if err != nil {
		t.Fatal(err)
	}
	pen, err := RunPEnKF(p, dec)
	if err != nil {
		t.Fatal(err)
	}
	len_, err := RunLEnKF(p, dec)
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string][][]float64{"S-EnKF": sen, "P-EnKF": pen, "L-EnKF": len_} {
		for k := range ref {
			for i := range ref[k] {
				if got[k][i] != ref[k][i] {
					t.Fatalf("%s differs from reference at member %d point %d", name, k, i)
				}
			}
		}
	}
	// And assimilation improved the state.
	before := RMSE(EnsembleMean(members), truth)
	after := RMSE(EnsembleMean(sen), truth)
	if !(after < before) {
		t.Errorf("assimilation did not improve RMSE: %g -> %g", before, after)
	}
}

func TestPublicAPIAutoTuneAndSimulate(t *testing.T) {
	m := DefaultMachine()
	tuned, ok := AutoTuneConstrained(m.P, 4000, 0.001, TuneConstraints{MaxL: 12, MaxNCg: 12})
	if !ok {
		t.Fatal("auto-tuner found nothing")
	}
	sres, err := SimulateSEnKF(m, tuned.Choice)
	if err != nil {
		t.Fatal(err)
	}
	nsdx, nsdy, err := ChooseDecomposition(m.P, 4000)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := SimulatePEnKF(m, nsdx, nsdy)
	if err != nil {
		t.Fatal(err)
	}
	if !(sres.Runtime < pres.Runtime) {
		t.Errorf("tuned S-EnKF (%.1fs) not faster than P-EnKF (%.1fs) at 4000 processors",
			sres.Runtime, pres.Runtime)
	}
	lres, err := SimulateLEnKF(m, nsdx, nsdy)
	if err != nil {
		t.Fatal(err)
	}
	if !(sres.Runtime < lres.Runtime) {
		t.Errorf("tuned S-EnKF (%.1fs) not faster than L-EnKF (%.1fs)", sres.Runtime, lres.Runtime)
	}
}

func TestPublicAPIQuickFigures(t *testing.T) {
	suite := QuickFigures()
	fig, err := suite.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.WriteTable(io.Discard); err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) == 0 {
		t.Error("empty figure")
	}
}

func TestPresetsAreConsistent(t *testing.T) {
	for _, ps := range []ExperimentPreset{PaperScale, LaptopScale, TestScale} {
		m, err := ps.Mesh()
		if err != nil {
			t.Errorf("%s: %v", ps.Name, err)
			continue
		}
		if m.NX != ps.NX || m.NY != ps.NY {
			t.Errorf("%s: mesh mismatch", ps.Name)
		}
		if ps.BytesPerPoint() != ps.Levels*8 {
			t.Errorf("%s: h = %d, want %d", ps.Name, ps.BytesPerPoint(), ps.Levels*8)
		}
	}
	if PaperScale.BytesPerPoint() != 240 {
		t.Errorf("paper h = %d, want 240", PaperScale.BytesPerPoint())
	}
}

func TestMemberPathExported(t *testing.T) {
	if MemberPath("/x", 3) != "/x/member_0003.senk" {
		t.Errorf("MemberPath = %q", MemberPath("/x", 3))
	}
}
