package senkf

import (
	"senkf/internal/cycle"
	"senkf/internal/enkf"
	"senkf/internal/grid"
	"senkf/internal/model"
	"senkf/internal/obs"
	"senkf/internal/workload"
)

// Sequential assimilation types.
type (
	// ForwardModel is the numerical model integrated between analyses: a
	// 2-D advection–diffusion equation on the doubly periodic mesh,
	// standing in for the paper's ocean model.
	ForwardModel = model.AdvectionDiffusion
	// CycleConfig drives a cycled (sequential) assimilation experiment.
	CycleConfig = cycle.Config
	// CycleStats records one forecast–analysis cycle's outcome.
	CycleStats = cycle.Stats
	// Analyzer computes an analysis ensemble from a background ensemble
	// and an observation network.
	Analyzer = cycle.Analyzer
)

// NewForwardModel validates the advection–diffusion parameters against the
// scheme's stability conditions and returns the model.
func NewForwardModel(m Mesh, cx, cy, nu, dt float64) (*ForwardModel, error) {
	return model.New(m, cx, cy, nu, dt)
}

// RunCycles performs sequential data assimilation: `cycles` rounds of
// model forecast (truth, ensemble, and a free-running control), observation
// of the evolving truth, and analysis through the given Analyzer.
func RunCycles(c CycleConfig, truth []float64, ensemble [][]float64, cycles int, analyze Analyzer) ([]CycleStats, error) {
	return cycle.Run(c, truth, ensemble, cycles, analyze)
}

// SerialAnalyzer analyses with the serial reference implementation.
func SerialAnalyzer() Analyzer { return cycle.SerialAnalyzer() }

// SEnKFAnalyzer analyses each cycle with the real parallel S-EnKF: the
// background ensemble is written to dir as member files (as an operational
// system would between model run and assimilation) and assimilated by
// C1 + C2 goroutine ranks.
func SEnKFAnalyzer(dir string, dec Decomposition, layers, ncg int) Analyzer {
	return cycle.SEnKFAnalyzer(dir, dec, layers, ncg)
}

// SEnKFAnalyzerObserved is SEnKFAnalyzer with observability attached: every
// cycle's run records into rec and traces through tr (either may be nil).
func SEnKFAnalyzerObserved(dir string, dec Decomposition, layers, ncg int, rec *Recorder, tr *Tracer) Analyzer {
	return cycle.SEnKFAnalyzerObserved(dir, dec, layers, ncg, rec, tr)
}

// PEnKFAnalyzer analyses each cycle with the block-reading baseline.
func PEnKFAnalyzer(dir string, dec Decomposition) Analyzer {
	return cycle.PEnKFAnalyzer(dir, dec)
}

// PEnKFAnalyzerObserved is PEnKFAnalyzer with observability attached.
func PEnKFAnalyzerObserved(dir string, dec Decomposition, rec *Recorder, tr *Tracer) Analyzer {
	return cycle.PEnKFAnalyzerObserved(dir, dec, rec, tr)
}

// GenerateSmoothNoise returns a deterministic smooth random field with
// point-wise standard deviation on the order of sd — usable as spatially
// correlated model error.
func GenerateSmoothNoise(m Mesh, sd float64, seed uint64, keys ...int) []float64 {
	return workload.SmoothNoise(m, sd, seed, keys...)
}

// compile-time coherence between facade aliases and internals.
var (
	_          = func(c CycleConfig) enkf.Config { return c.Enkf }
	_          = func(c CycleConfig) grid.Mesh { return c.Enkf.Mesh }
	_ Analyzer = func(enkf.Config, [][]float64, *obs.Network) ([][]float64, error) { return nil, nil }
)
