// Trace-derived verification of the paper's evaluation quantities: the
// Figure 9 phase breakdowns and the Figure 11 overlap share are recomputed
// from the raw trace events and asserted against the metrics.Recorder
// derivation, and the causality/capacity invariants of the schedules are
// checked on the same trace. A bug in either the instrumentation or the
// recorder shows up here as a mismatch.
package senkf

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"senkf/internal/costmodel"
	"senkf/internal/figures"
	"senkf/internal/metrics"
	"senkf/internal/parfs"
	"senkf/internal/schedule"
	"senkf/internal/trace"
)

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func assertBreakdownsMatch(t *testing.T, label string, fromTrace, fromRecorder metrics.Breakdown) {
	t.Helper()
	for _, ph := range []metrics.Phase{metrics.PhaseRead, metrics.PhaseComm, metrics.PhaseCompute, metrics.PhaseWait} {
		if !relClose(fromTrace.Get(ph), fromRecorder.Get(ph), 1e-6) {
			t.Errorf("%s %s: trace-derived %.12g vs recorder %.12g",
				label, ph, fromTrace.Get(ph), fromRecorder.Get(ph))
		}
	}
}

// TestTracedSEnKFPaperScale runs the auto-tuned S-EnKF schedule at the
// paper's 12,000-processor scale with tracing attached and verifies:
// the Chrome export is valid, loadable JSON that round-trips; the Fig. 9
// breakdowns and Fig. 11 overlap share recomputed from the trace match the
// Recorder-derived Result within 1e-6 relative; no stage is computed before
// its last block arrived; and no OST ever serves more requests at once than
// its configured concurrency.
func TestTracedSEnKFPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale traced run skipped in -short mode")
	}
	buf := trace.NewBuffer()
	tr := trace.New(nil, buf)
	reg := trace.NewRegistry()
	tr.SetCounters(reg)
	suite := figures.NewSuite(figures.PaperOptions())
	suite.O.Cfg.Tracer = tr

	res, tuned, err := suite.SEnKFAt(12000)
	if err != nil {
		t.Fatal(err)
	}
	events := buf.Events()
	if len(events) == 0 {
		t.Fatal("traced run emitted no events")
	}

	// Figure 9: mean per-processor phase breakdowns from the trace.
	assertBreakdownsMatch(t, "io", trace.MeanPhaseBreakdown(events, metrics.IOPrefix), res.IO)
	assertBreakdownsMatch(t, "compute", trace.MeanPhaseBreakdown(events, metrics.ComputePrefix), res.Compute)

	// Figure 11: overlap share of I/O+comm behind compute, from the trace.
	ioSpans := trace.PhaseSpans(events, metrics.IOPrefix, metrics.PhaseRead, metrics.PhaseComm)
	cpSpans := trace.PhaseSpans(events, metrics.ComputePrefix, metrics.PhaseCompute)
	overlap := metrics.OverlapDuration(ioSpans, cpSpans)
	ioBusy := metrics.SpanTotal(ioSpans)
	if ioBusy == 0 {
		t.Fatal("no I/O phase spans in trace")
	}
	if got := overlap / ioBusy; !relClose(got, res.OverlapFraction, 1e-6) {
		t.Errorf("overlap fraction from trace %.12g vs result %.12g", got, res.OverlapFraction)
	}
	if got := overlap / res.Runtime; !relClose(got, res.OverlapRuntimeFraction, 1e-6) {
		t.Errorf("overlap runtime fraction from trace %.12g vs result %.12g", got, res.OverlapRuntimeFraction)
	}

	// Causality: every stage-l compute span starts at or after the stage-l
	// "ready" instant, on every compute track.
	checked, err := trace.CheckStageOrdering(events)
	if err != nil {
		t.Error(err)
	}
	if want := tuned.Choice.C2() * tuned.Choice.L; checked != want {
		t.Errorf("stage ordering checked %d compute spans, want %d", checked, want)
	}

	// Capacity: per-OST in-flight service spans never exceed the limit.
	mc := trace.MaxConcurrent(events, "ost", trace.CatOST, "service")
	if len(mc) == 0 {
		t.Fatal("no OST service spans in trace")
	}
	for ost, m := range mc {
		if m > suite.O.Cfg.FS.ConcurrencyPerOST {
			t.Errorf("%s served %d requests at once, limit %d", ost, m, suite.O.Cfg.FS.ConcurrencyPerOST)
		}
	}

	// The counter registry agrees with the file system's own accounting.
	if got := reg.CounterValue("parfs.requests"); got != float64(res.FSStats.Requests) {
		t.Errorf("parfs.requests counter %g vs FSStats %d", got, res.FSStats.Requests)
	}
	if got := reg.CounterValue("parfs.seeks"); got != float64(res.FSStats.Seeks) {
		t.Errorf("parfs.seeks counter %g vs FSStats %d", got, res.FSStats.Seeks)
	}
	if got := reg.CounterValue("parfs.bytes"); !relClose(got, res.FSStats.BytesRead, 1e-9) {
		t.Errorf("parfs.bytes counter %g vs FSStats %g", got, res.FSStats.BytesRead)
	}

	// Chrome export: valid JSON that decodes back to the same events.
	var out bytes.Buffer
	if err := buf.WriteChrome(&out); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(out.Bytes()) {
		t.Fatal("Chrome export is not valid JSON")
	}
	decoded, err := trace.ReadChrome(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("round trip decoded %d events, emitted %d", len(decoded), len(events))
	}
	// Microsecond quantization bounds the round-trip breakdown error.
	rb := trace.PhaseBreakdown(decoded, metrics.ComputePrefix)
	eb := trace.PhaseBreakdown(events, metrics.ComputePrefix)
	if !relClose(rb.Compute, eb.Compute, 1e-3) {
		t.Errorf("round-trip compute total %.12g vs exact %.12g", rb.Compute, eb.Compute)
	}
}

// TestTracedPEnKFCausality traces the block-reading baseline and asserts
// its single-stage invariant: on every processor, computation starts only
// after the last read has finished; and the trace-derived breakdown matches
// the Result.
func TestTracedPEnKFCausality(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale traced run skipped in -short mode")
	}
	buf := trace.NewBuffer()
	tr := trace.New(nil, buf)
	suite := figures.NewSuite(figures.PaperOptions())
	suite.O.Cfg.Tracer = tr

	res, err := suite.PEnKFAt(2000)
	if err != nil {
		t.Fatal(err)
	}
	events := buf.Events()
	checked, err := trace.CheckReadBeforeCompute(events, metrics.ComputePrefix)
	if err != nil {
		t.Error(err)
	}
	if checked != 2000 {
		t.Errorf("read-before-compute checked %d tracks, want 2000", checked)
	}
	assertBreakdownsMatch(t, "compute", trace.MeanPhaseBreakdown(events, metrics.ComputePrefix), res.Compute)
	for ost, m := range trace.MaxConcurrent(events, "ost", trace.CatOST, "service") {
		if m > suite.O.Cfg.FS.ConcurrencyPerOST {
			t.Errorf("%s served %d requests at once, limit %d", ost, m, suite.O.Cfg.FS.ConcurrencyPerOST)
		}
	}
}

// TestRealSEnKFCrossChecksSimulatedAccounting runs the real S-EnKF over
// actual member files and the simulated S-EnKF schedule with the same
// (N, n_sdx, n_sdy, L, n_cg) geometry, and cross-checks the two independent
// accountings: ensio counts the real addressing operations and read
// requests; parfs counts the simulated ones. The schedule determines both —
// one bar read per (reader, file-of-group, stage) — so they must agree
// exactly.
func TestRealSEnKFCrossChecksSimulatedAccounting(t *testing.T) {
	const (
		members = 8
		nsdx    = 4
		nsdy    = 2
		layers  = 2
		ncg     = 2
	)
	mesh, err := NewMesh(48, 24)
	if err != nil {
		t.Fatal(err)
	}
	radius, err := NewRadius(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := GenerateTruth(mesh, DefaultFieldSpec, 11)
	ens, err := GenerateEnsemble(mesh, truth, members, 1.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := WriteEnsemble(dir, mesh, ens); err != nil {
		t.Fatal(err)
	}
	net, err := NewStridedNetwork(mesh, truth, 3, 3, 0.01, 11)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecomposition(mesh, nsdx, nsdy, radius)
	if err != nil {
		t.Fatal(err)
	}

	// Counters accumulate without any span sink attached.
	reg := NewCounterRegistry()
	tr := NewWallTracer()
	tr.SetCounters(reg)
	cfg := Config{Mesh: mesh, Radius: radius, N: members, Seed: 11}
	p := Problem{Cfg: cfg, Dir: dir, Net: net, Tr: tr}
	if _, err := RunSEnKF(p, Plan{Dec: dec, L: layers, NCg: ncg}); err != nil {
		t.Fatal(err)
	}

	// One bar read per (reader, file, stage): ncg·nsdy readers, N/ncg files
	// each, L stages.
	wantReads := ncg * nsdy * (members / ncg) * layers
	realSeeks := reg.CounterValue("ensio.seeks")
	realReads := reg.CounterValue("ensio.reads")
	if realReads != float64(wantReads) {
		t.Errorf("real ensio reads = %g, want %d", realReads, wantReads)
	}
	if realSeeks != float64(wantReads) { // full-width bars: one seek per read
		t.Errorf("real ensio seeks = %g, want %d", realSeeks, wantReads)
	}
	if bytes := reg.CounterValue("ensio.bytes"); bytes <= 0 {
		t.Errorf("real ensio bytes = %g, want > 0", bytes)
	}

	// The same schedule simulated: parfs must count the same requests/seeks.
	simCfg := schedule.Config{
		P: costmodel.Params{
			N: members, NX: 48, NY: 24,
			A: 1e-6, B: 1e-9, C: 1e-6,
			Theta: 1e-9, Xi: 4, Eta: 2, H: 8,
		},
		FS: parfs.Config{
			OSTs:              2,
			ConcurrencyPerOST: 2,
			SeekTime:          1e-4,
			ByteTime:          1e-9,
			BackboneStreams:   4,
		},
	}
	res, err := schedule.SimulateSEnKF(simCfg, costmodel.Choice{NSdx: nsdx, NSdy: nsdy, L: layers, NCg: ncg})
	if err != nil {
		t.Fatal(err)
	}
	if res.FSStats.Requests != wantReads {
		t.Errorf("simulated parfs requests = %d, want %d", res.FSStats.Requests, wantReads)
	}
	if res.FSStats.Seeks != int(realSeeks) {
		t.Errorf("simulated parfs seeks = %d, real ensio seeks = %g", res.FSStats.Seeks, realSeeks)
	}

	// The message layer moved every stage block: at least one message per
	// (reader, file, stage, destination column).
	if msgs := reg.CounterValue("mpi.msgs"); msgs < float64(wantReads*nsdx) {
		t.Errorf("mpi.msgs = %g, want >= %d stage messages", msgs, wantReads*nsdx)
	}
	if b := reg.CounterValue("mpi.bytes"); b <= 0 {
		t.Errorf("mpi.bytes = %g, want > 0", b)
	}
}

// TestWireAccountingMatchesTransportTotals is the wire layer's conservation
// invariant, on every algorithm variant: on the real substrate, the edge
// matrix plus the "other" bucket accounts for every message and byte the
// transport counted (mpi.msgs/mpi.bytes); on the simulated substrate, the
// per-OST attribution sums to exactly the file-system model's BytesRead.
func TestWireAccountingMatchesTransportTotals(t *testing.T) {
	const (
		members = 8
		nsdx    = 4
		nsdy    = 2
		layers  = 2
		ncg     = 2
		levels  = 3
	)
	mesh, err := NewMesh(48, 24)
	if err != nil {
		t.Fatal(err)
	}
	radius, err := NewRadius(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := GenerateTruth(mesh, DefaultFieldSpec, 11)
	ens, err := GenerateEnsemble(mesh, truth, members, 1.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := WriteEnsemble(dir, mesh, ens); err != nil {
		t.Fatal(err)
	}
	net, err := NewStridedNetwork(mesh, truth, 3, 3, 0.01, 11)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecomposition(mesh, nsdx, nsdy, radius)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mesh: mesh, Radius: radius, N: members, Seed: 11}

	truths, err := GenerateTruthLevels(mesh, DefaultFieldSpec, levels, 11)
	if err != nil {
		t.Fatal(err)
	}
	mlEns, err := GenerateEnsembleLevels(mesh, truths, members, 1.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	mlDir := t.TempDir()
	if _, err := WriteEnsembleLevels(mlDir, mesh, mlEns); err != nil {
		t.Fatal(err)
	}
	nets := make([]*Network, levels)
	for l := range nets {
		if nets[l], err = NewStridedNetwork(mesh, truths[l], 3, 3, 0.01, 11+uint64(l)); err != nil {
			t.Fatal(err)
		}
	}

	// Real substrate: the collector sees every delivered message; the
	// registry counts every sent one. The engines drain all mailboxes, so
	// the two totals must agree exactly.
	realVariants := []struct {
		name string
		run  func(p Problem, mp MultiLevelProblem) error
	}{
		{"SEnKF", func(p Problem, _ MultiLevelProblem) error {
			_, err := RunSEnKF(p, Plan{Dec: dec, L: layers, NCg: ncg})
			return err
		}},
		{"PEnKF", func(p Problem, _ MultiLevelProblem) error {
			_, err := RunPEnKF(p, dec)
			return err
		}},
		{"LEnKF", func(p Problem, _ MultiLevelProblem) error {
			_, err := RunLEnKF(p, dec)
			return err
		}},
		{"SEnKF-ML", func(_ Problem, mp MultiLevelProblem) error {
			_, err := RunSEnKFMultiLevel(mp, Plan{Dec: dec, L: layers, NCg: ncg})
			return err
		}},
		{"PEnKF-ML", func(_ Problem, mp MultiLevelProblem) error {
			_, err := RunPEnKFMultiLevel(mp, dec)
			return err
		}},
	}
	for _, v := range realVariants {
		t.Run(v.name, func(t *testing.T) {
			reg := NewCounterRegistry()
			tr := NewWallTracer()
			tr.SetCounters(reg)
			wc := NewWireCollector()
			p := Problem{Cfg: cfg, Dir: dir, Net: net, Tr: tr, Msgs: wc}
			mp := MultiLevelProblem{Cfg: cfg, Dir: mlDir, Nets: nets, Tr: tr, Msgs: wc}
			if err := v.run(p, mp); err != nil {
				t.Fatal(err)
			}
			tot := wc.Matrix().Totals()
			om, ob := wc.Other()
			if got, want := float64(tot.Msgs+om), reg.CounterValue("mpi.msgs"); got != want {
				t.Errorf("wire msgs %g (edges %d + other %d) vs transport %g",
					got, tot.Msgs, om, want)
			}
			if got, want := float64(tot.Bytes+ob), reg.CounterValue("mpi.bytes"); got != want {
				t.Errorf("wire bytes %g (edges %d + other %d) vs transport %g",
					got, tot.Bytes, ob, want)
			}
		})
	}

	// Simulated substrate: the collector's per-OST attribution must sum to
	// exactly what the parallel-file-system model reports having served.
	simCfg := schedule.Config{
		P: costmodel.Params{
			N: members, NX: 48, NY: 24,
			A: 1e-6, B: 1e-9, C: 1e-6,
			Theta: 1e-9, Xi: 4, Eta: 2, H: 8,
		},
		FS: parfs.Config{
			OSTs:              2,
			ConcurrencyPerOST: 2,
			SeekTime:          1e-4,
			ByteTime:          1e-9,
			BackboneStreams:   4,
		},
	}
	simVariants := []struct {
		name   string
		levels int
		run    func(sc schedule.Config) (SimResult, error)
	}{
		{"sim-SEnKF", 1, func(sc schedule.Config) (SimResult, error) {
			return schedule.SimulateSEnKF(sc, costmodel.Choice{NSdx: nsdx, NSdy: nsdy, L: layers, NCg: ncg})
		}},
		{"sim-PEnKF", 1, func(sc schedule.Config) (SimResult, error) {
			return schedule.SimulatePEnKF(sc, nsdx, nsdy)
		}},
		{"sim-LEnKF", 1, func(sc schedule.Config) (SimResult, error) {
			return schedule.SimulateLEnKF(sc, nsdx, nsdy)
		}},
		{"sim-SEnKF-ML", levels, func(sc schedule.Config) (SimResult, error) {
			return schedule.SimulateSEnKF(sc, costmodel.Choice{NSdx: nsdx, NSdy: nsdy, L: layers, NCg: ncg})
		}},
		{"sim-PEnKF-ML", levels, func(sc schedule.Config) (SimResult, error) {
			return schedule.SimulatePEnKF(sc, nsdx, nsdy)
		}},
	}
	for _, v := range simVariants {
		t.Run(v.name, func(t *testing.T) {
			sc := simCfg
			sc.P.Levels = v.levels
			wc := NewWireCollector()
			sc.Msgs = wc
			sc.Reads = wc
			res, err := v.run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := wc.OSTBytes(), res.FSStats.BytesRead; !relClose(got, want, 1e-9) {
				t.Errorf("wire OST bytes %g vs parfs BytesRead %g", got, want)
			}
			if res.FSStats.BytesRead <= 0 {
				t.Error("simulated run read no bytes")
			}
		})
	}
}

// TestWireTelemetryKeepsPrimarySinkByteIdentical pins the tee guarantee:
// attaching a wire collector (side events riding EmitSide) must leave the
// primary Chrome trace byte-for-byte identical to an unwired run, while
// the secondary sink sees the deliver/read instants.
func TestWireTelemetryKeepsPrimarySinkByteIdentical(t *testing.T) {
	simCfg := schedule.Config{
		P: costmodel.Params{
			N: 8, NX: 48, NY: 24,
			A: 1e-6, B: 1e-9, C: 1e-6,
			Theta: 1e-9, Xi: 4, Eta: 2, H: 8,
		},
		FS: parfs.Config{
			OSTs:              2,
			ConcurrencyPerOST: 2,
			SeekTime:          1e-4,
			ByteTime:          1e-9,
			BackboneStreams:   4,
		},
	}
	choice := costmodel.Choice{NSdx: 4, NSdy: 2, L: 2, NCg: 2}

	run := func(wired bool) (string, []TraceEvent) {
		primary := trace.NewBuffer()
		sc := simCfg
		var side *TraceBuffer
		if wired {
			side = trace.NewBuffer()
			tee := NewTraceTee(primary, side)
			wc := NewWireCollector()
			wc.SetSide(tee)
			sc.Msgs = wc
			sc.Reads = wc
			sc.Tracer = trace.New(nil, tee)
			if _, err := schedule.SimulateSEnKF(sc, choice); err != nil {
				t.Fatal(err)
			}
			tee.Flush()
		} else {
			sc.Tracer = trace.New(nil, primary)
			if _, err := schedule.SimulateSEnKF(sc, choice); err != nil {
				t.Fatal(err)
			}
		}
		var out bytes.Buffer
		if err := primary.WriteChrome(&out); err != nil {
			t.Fatal(err)
		}
		var sideEvents []TraceEvent
		if side != nil {
			sideEvents = side.Events()
		}
		return out.String(), sideEvents
	}

	plain, _ := run(false)
	wired, side := run(true)
	if plain != wired {
		t.Errorf("primary Chrome trace differs with wire telemetry on (%d vs %d bytes)",
			len(plain), len(wired))
	}
	var delivers, reads int
	for _, ev := range side {
		switch {
		case ev.Cat == trace.CatComm && ev.Name == "deliver":
			delivers++
		case ev.Cat == trace.CatOST && ev.Name == "read":
			reads++
		}
	}
	if delivers == 0 || reads == 0 {
		t.Errorf("secondary sink saw %d delivers and %d reads, want both > 0", delivers, reads)
	}
}

// TestRealAndSimulatedSchedulesShareStructure is the plan engine's central
// invariant: the phase-span DAG of a traced real run is structurally
// identical to the simulated schedule at the same geometry, and both equal
// the DAG the compiled plan prescribes. Wall-clock and virtual timings
// differ — the busy-span chains and helper-thread release points must not.
func TestRealAndSimulatedSchedulesShareStructure(t *testing.T) {
	const (
		members = 8
		nsdx    = 4
		nsdy    = 2
		layers  = 2
		ncg     = 2
	)
	mesh, err := NewMesh(48, 24)
	if err != nil {
		t.Fatal(err)
	}
	radius, err := NewRadius(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := GenerateTruth(mesh, DefaultFieldSpec, 11)
	ens, err := GenerateEnsemble(mesh, truth, members, 1.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := WriteEnsemble(dir, mesh, ens); err != nil {
		t.Fatal(err)
	}
	net, err := NewStridedNetwork(mesh, truth, 3, 3, 0.01, 11)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecomposition(mesh, nsdx, nsdy, radius)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mesh: mesh, Radius: radius, N: members, Seed: 11}
	// The simulated machine over the same geometry: ξ, η become the
	// decomposition radius, so both substrates interpret the same plan.
	simCfg := schedule.Config{
		P: costmodel.Params{
			N: members, NX: 48, NY: 24,
			A: 1e-6, B: 1e-9, C: 1e-6,
			Theta: 1e-9, Xi: 4, Eta: 2, H: 8,
		},
		FS: parfs.Config{
			OSTs:              2,
			ConcurrencyPerOST: 2,
			SeekTime:          1e-4,
			ByteTime:          1e-9,
			BackboneStreams:   4,
		},
	}

	real := func(t *testing.T, run func(Problem) error) ([]TraceEvent, *WireCollector) {
		t.Helper()
		buf := trace.NewBuffer()
		wc := NewWireCollector()
		if err := run(Problem{Cfg: cfg, Dir: dir, Net: net, Tr: NewWallTracer(buf), Msgs: wc}); err != nil {
			t.Fatal(err)
		}
		return buf.Events(), wc
	}
	simulated := func(t *testing.T, run func(schedule.Config) error) ([]TraceEvent, *WireCollector) {
		t.Helper()
		buf := trace.NewBuffer()
		sc := simCfg
		sc.Tracer = trace.New(nil, buf)
		wc := NewWireCollector()
		sc.Msgs = wc
		sc.Reads = wc
		if err := run(sc); err != nil {
			t.Fatal(err)
		}
		return buf.Events(), wc
	}
	check := func(t *testing.T, spec AlgorithmSpec, realEvents, simEvents []TraceEvent, realWC, simWC *WireCollector) {
		t.Helper()
		cp, err := CompilePlan(spec)
		if err != nil {
			t.Fatal(err)
		}
		want := cp.ExpectedDAG()
		if err := DiffDAG(TraceDAG(realEvents), want); err != nil {
			t.Errorf("real vs plan: %v", err)
		}
		if err := DiffDAG(TraceDAG(simEvents), want); err != nil {
			t.Errorf("simulated vs plan: %v", err)
		}
		// Wire telemetry's central invariant: the edge matrix observed on
		// the real transport, the one mirrored by the simulated schedule,
		// and the one derived from the compiled plan alone are bit-identical.
		wantEdges := ExpectedEdges(cp)
		if err := wantEdges.Diff(realWC.Matrix()); err != nil {
			t.Errorf("expected vs real edges: %v", err)
		}
		if err := wantEdges.Diff(simWC.Matrix()); err != nil {
			t.Errorf("expected vs simulated edges: %v", err)
		}
	}

	t.Run("SEnKF", func(t *testing.T) {
		realEvents, realWC := real(t, func(p Problem) error {
			_, err := RunSEnKF(p, Plan{Dec: dec, L: layers, NCg: ncg})
			return err
		})
		simEvents, simWC := simulated(t, func(sc schedule.Config) error {
			_, err := schedule.SimulateSEnKF(sc, costmodel.Choice{NSdx: nsdx, NSdy: nsdy, L: layers, NCg: ncg})
			return err
		})
		check(t, SEnKFSpec(dec, members, layers, ncg), realEvents, simEvents, realWC, simWC)
	})
	t.Run("PEnKF", func(t *testing.T) {
		realEvents, realWC := real(t, func(p Problem) error {
			_, err := RunPEnKF(p, dec)
			return err
		})
		simEvents, simWC := simulated(t, func(sc schedule.Config) error {
			_, err := schedule.SimulatePEnKF(sc, nsdx, nsdy)
			return err
		})
		check(t, PEnKFSpec(dec, members), realEvents, simEvents, realWC, simWC)
	})
	t.Run("LEnKF", func(t *testing.T) {
		realEvents, realWC := real(t, func(p Problem) error {
			_, err := RunLEnKF(p, dec)
			return err
		})
		simEvents, simWC := simulated(t, func(sc schedule.Config) error {
			_, err := schedule.SimulateLEnKF(sc, nsdx, nsdy)
			return err
		})
		check(t, LEnKFSpec(dec, members), realEvents, simEvents, realWC, simWC)
	})

	// The multilevel variants run on the same engine from the same plans
	// with the level dimension set: the structural DAG must be identical to
	// the single-level one (levels change weights, never shape), on both
	// substrates.
	const levels = 3
	truths, err := GenerateTruthLevels(mesh, DefaultFieldSpec, levels, 11)
	if err != nil {
		t.Fatal(err)
	}
	mlEns, err := GenerateEnsembleLevels(mesh, truths, members, 1.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	mlDir := t.TempDir()
	if _, err := WriteEnsembleLevels(mlDir, mesh, mlEns); err != nil {
		t.Fatal(err)
	}
	nets := make([]*Network, levels)
	for l := range nets {
		if nets[l], err = NewStridedNetwork(mesh, truths[l], 3, 3, 0.01, 11+uint64(l)); err != nil {
			t.Fatal(err)
		}
	}
	realML := func(t *testing.T, run func(MultiLevelProblem) error) ([]TraceEvent, *WireCollector) {
		t.Helper()
		buf := trace.NewBuffer()
		wc := NewWireCollector()
		if err := run(MultiLevelProblem{Cfg: cfg, Dir: mlDir, Nets: nets, Tr: NewWallTracer(buf), Msgs: wc}); err != nil {
			t.Fatal(err)
		}
		return buf.Events(), wc
	}
	simulatedML := func(t *testing.T, run func(schedule.Config) error) ([]TraceEvent, *WireCollector) {
		t.Helper()
		buf := trace.NewBuffer()
		sc := simCfg
		sc.P.Levels = levels
		sc.Tracer = trace.New(nil, buf)
		wc := NewWireCollector()
		sc.Msgs = wc
		sc.Reads = wc
		if err := run(sc); err != nil {
			t.Fatal(err)
		}
		return buf.Events(), wc
	}

	t.Run("SEnKF-ML", func(t *testing.T) {
		realEvents, realWC := realML(t, func(p MultiLevelProblem) error {
			_, err := RunSEnKFMultiLevel(p, Plan{Dec: dec, L: layers, NCg: ncg})
			return err
		})
		simEvents, simWC := simulatedML(t, func(sc schedule.Config) error {
			_, err := schedule.SimulateSEnKF(sc, costmodel.Choice{NSdx: nsdx, NSdy: nsdy, L: layers, NCg: ncg})
			return err
		})
		check(t, SEnKFSpec(dec, members, layers, ncg).WithLevels(levels), realEvents, simEvents, realWC, simWC)
	})
	t.Run("PEnKF-ML", func(t *testing.T) {
		realEvents, realWC := realML(t, func(p MultiLevelProblem) error {
			_, err := RunPEnKFMultiLevel(p, dec)
			return err
		})
		simEvents, simWC := simulatedML(t, func(sc schedule.Config) error {
			_, err := schedule.SimulatePEnKF(sc, nsdx, nsdy)
			return err
		})
		check(t, PEnKFSpec(dec, members).WithLevels(levels), realEvents, simEvents, realWC, simWC)
	})
}
