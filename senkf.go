// Package senkf is a Go reproduction of "S-EnKF: Co-designing for Scalable
// Ensemble Kalman Filter" (Xiao, Wang, Wan, Hong, Tan — PPoPP 2019): a
// scalable, distributed ensemble Kalman filter built around three
// co-designs — concurrent-group bar reading of background ensemble members,
// multi-stage computation that overlaps file reading and communication with
// local analysis via helper threads, and cost-model-driven auto-tuning of
// the processor layout (n_sdx, n_sdy, L, n_cg).
//
// Each of the three algorithms — S-EnKF and the P-EnKF/L-EnKF baselines —
// is declared once, as a reader strategy compiled into an explicit per-rank
// schedule (SEnKFSpec/PEnKFSpec/LEnKFSpec + CompilePlan), and interpreted
// on two substrates:
//
//   - Real executions (RunSEnKF, RunPEnKF, RunLEnKF): numerically exact
//     assimilation over real member files, parallelised across goroutine
//     ranks with a message-passing runtime. All three reproduce the serial
//     reference (SerialReference) bit for bit.
//   - Simulated executions (SimulateSEnKF, SimulatePEnKF, SimulateLEnKF):
//     the same compiled schedules replayed on a discrete-event machine with
//     a parallel-file-system model at the paper's scale (12,000 processors,
//     0.1° data), regenerating the evaluation figures (PaperFigures).
//
// Because both substrates derive their event structure from the same
// compiled plan, a traced real run and a simulated run at equal geometry
// are structurally identical — same phase spans, same stage release edges
// per rank (see ExpectedDAG/TraceDAG/DiffDAG).
//
// Quick start:
//
//	mesh, _ := senkf.NewMesh(96, 48)
//	truth := senkf.GenerateTruth(mesh, senkf.DefaultFieldSpec, 7)
//	members, _ := senkf.GenerateEnsemble(mesh, truth, 16, 1.5, 7)
//	dir, _ := os.MkdirTemp("", "ens")
//	senkf.WriteEnsemble(dir, mesh, members)
//	net, _ := senkf.NewStridedNetwork(mesh, truth, 3, 3, 0.01, 7)
//	cfg := senkf.Config{Mesh: mesh, Radius: senkf.Radius{Xi: 4, Eta: 2}, N: 16, Seed: 7}
//	dec, _ := senkf.NewDecomposition(mesh, 4, 2, cfg.Radius)
//	analysis, _ := senkf.RunSEnKF(senkf.Problem{Cfg: cfg, Dir: dir, Net: net},
//		senkf.Plan{Dec: dec, L: 4, NCg: 2})
package senkf

import (
	"io"

	"senkf/internal/baseline"
	"senkf/internal/core"
	"senkf/internal/costmodel"
	"senkf/internal/enkf"
	"senkf/internal/ensio"
	"senkf/internal/faults"
	"senkf/internal/figures"
	"senkf/internal/grid"
	"senkf/internal/metrics"
	"senkf/internal/obs"
	"senkf/internal/plan"
	"senkf/internal/profiling"
	"senkf/internal/report"
	"senkf/internal/report/bench"
	"senkf/internal/schedule"
	"senkf/internal/trace"
	"senkf/internal/trace/critpath"
	"senkf/internal/workload"
)

// Geometry types.
type (
	// Mesh is the global latitude–longitude mesh (n_x × n_y grid points).
	Mesh = grid.Mesh
	// Box is a half-open rectangle of grid points.
	Box = grid.Box
	// Radius is the domain-localization influence scope (ξ, η).
	Radius = grid.Radius
	// Decomposition splits the mesh into n_sdx × n_sdy sub-domains.
	Decomposition = grid.Decomposition
)

// Assimilation types.
type (
	// Config carries the assimilation parameters (mesh, radius, ensemble
	// size, solver, observation-perturbation seed).
	Config = enkf.Config
	// Solver selects the local analysis formulation.
	Solver = enkf.Solver
	// Block is ensemble data over a box.
	Block = enkf.Block
	// Network is an observation network over the mesh.
	Network = obs.Network
	// Observation is one observed component.
	Observation = obs.Observation
	// FieldSpec controls synthetic truth-field generation.
	FieldSpec = workload.FieldSpec
	// ExperimentPreset bundles a full experiment geometry.
	ExperimentPreset = workload.Preset
)

// Parallel execution types.
type (
	// Plan is the S-EnKF processor layout: decomposition + L + n_cg.
	Plan = core.Plan
	// Recorder collects wall-clock phase intervals from real executions.
	Recorder = metrics.Recorder
	// PhaseBreakdown sums recorded time per phase.
	PhaseBreakdown = metrics.Breakdown
)

// Observability types (structured event tracing and counters).
type (
	// Tracer emits structured spans/instants/counters to its sinks. A nil
	// tracer is valid everywhere and costs nothing.
	Tracer = trace.Tracer
	// TraceEvent is one emitted trace event.
	TraceEvent = trace.Event
	// TraceSink receives emitted events.
	TraceSink = trace.Sink
	// TraceBuffer collects events in memory and exports Chrome trace JSON.
	TraceBuffer = trace.Buffer
	// CounterRegistry aggregates named counters, gauges and histograms.
	CounterRegistry = trace.Registry
)

// Processor-name class prefixes: every I/O processor is named
// "io/g<group>/r<reader>" and every compute processor "comp/x<i>y<j>",
// across all schedules, the recorder and the trace tracks.
const (
	IOPrefix      = metrics.IOPrefix
	ComputePrefix = metrics.ComputePrefix
)

// Modelling and simulation types.
type (
	// ModelParams are the Table-1 cost-model parameters.
	ModelParams = costmodel.Params
	// Choice is a (n_sdx, n_sdy, L, n_cg) parameter assignment.
	Choice = costmodel.Choice
	// Tuned is the auto-tuner's selected configuration.
	Tuned = costmodel.Tuned
	// TuneConstraints optionally bounds the auto-tuner's search.
	TuneConstraints = costmodel.TuneConstraints
	// Machine couples problem parameters with the file-system model for
	// simulated executions.
	Machine = schedule.Config
	// SimResult is the outcome of a simulated run.
	SimResult = schedule.Result
	// Figure is a regenerated evaluation figure.
	Figure = figures.Figure
	// FigureOptions configures the figure suite.
	FigureOptions = figures.Options
	// FigureSuite runs and caches the figure experiments.
	FigureSuite = figures.Suite
)

// Solver choices (§2.3).
const (
	// SolverEnsembleSpace solves the analysis in ensemble space (L-EnKF
	// style).
	SolverEnsembleSpace = enkf.SolverEnsembleSpace
	// SolverModifiedCholesky uses the modified-Cholesky inverse-covariance
	// estimate (P-EnKF style, refs [23, 24]).
	SolverModifiedCholesky = enkf.SolverModifiedCholesky
	// SolverETKF is the deterministic ensemble transform (LETKF family,
	// ref [25]); no observation perturbations.
	SolverETKF = enkf.SolverETKF
)

// Experiment presets.
var (
	// PaperScale is the §5.1 configuration: 0.1° data, 3600×1800 grid,
	// 30 levels, 120 members. Simulation-only (the state is ~186 GB).
	PaperScale = workload.PaperScale
	// LaptopScale is a small geometry for real end-to-end runs.
	LaptopScale = workload.LaptopScale
	// TestScale is tiny, for tests and demos.
	TestScale = workload.TestScale
	// DefaultFieldSpec is a reasonable ocean-like truth texture.
	DefaultFieldSpec = workload.DefaultFieldSpec
)

// NewMesh validates and returns an n_x × n_y mesh.
func NewMesh(nx, ny int) (Mesh, error) { return grid.NewMesh(nx, ny) }

// NewRadius validates a localization radius.
func NewRadius(xi, eta int) (Radius, error) { return grid.NewRadius(xi, eta) }

// NewDecomposition validates and returns a domain decomposition.
func NewDecomposition(m Mesh, nsdx, nsdy int, r Radius) (Decomposition, error) {
	return grid.NewDecomposition(m, nsdx, nsdy, r)
}

// GenerateTruth produces a deterministic synthetic truth field.
func GenerateTruth(m Mesh, spec FieldSpec, seed uint64) []float64 {
	return workload.Truth(m, spec, seed)
}

// GenerateEnsemble produces n background members around the truth, standing
// in for the long-time model integration of §5.1.
func GenerateEnsemble(m Mesh, truth []float64, n int, spread float64, seed uint64) ([][]float64, error) {
	return workload.Ensemble(m, truth, n, spread, seed)
}

// WriteEnsemble stores members as the on-disk background ensemble files
// read by the parallel implementations. It returns the file paths.
func WriteEnsemble(dir string, m Mesh, members [][]float64) ([]string, error) {
	return ensio.WriteEnsemble(dir, m, members)
}

// MemberPath returns the canonical file name of member k inside dir.
func MemberPath(dir string, k int) string { return ensio.MemberPath(dir, k) }

// NewStridedNetwork builds a regular observation network measuring the
// truth with noise of the given variance.
func NewStridedNetwork(m Mesh, truth []float64, strideX, strideY int, variance float64, seed uint64) (*Network, error) {
	return obs.StridedNetwork(m, truth, strideX, strideY, variance, seed)
}

// NewRandomNetwork places count observations at distinct random points.
func NewRandomNetwork(m Mesh, truth []float64, count int, variance float64, seed uint64) (*Network, error) {
	return obs.RandomNetwork(m, truth, count, variance, seed)
}

// NewOffGridNetwork places count observations at random fractional
// positions; each measures the bilinear interpolation of the truth — the
// non-trivial observation operator H of real observational data.
func NewOffGridNetwork(m Mesh, truth []float64, count int, variance float64, seed uint64) (*Network, error) {
	return obs.RandomOffGridNetwork(m, truth, count, variance, seed)
}

// SerialReference computes the full-grid localized analysis point by point
// — the ground truth all parallel paths must match.
func SerialReference(c Config, background [][]float64, net *Network) ([][]float64, error) {
	return enkf.SerialReference(c, background, net)
}

// EnsembleMean returns the point-wise ensemble mean field.
func EnsembleMean(fields [][]float64) []float64 { return enkf.EnsembleMean(fields) }

// RMSE returns the root-mean-square error between a field and the truth.
func RMSE(field, truth []float64) float64 { return enkf.RMSE(field, truth) }

// NewRecorder returns an empty phase recorder for real executions.
func NewRecorder() *Recorder { return metrics.NewRecorder() }

// NewTraceBuffer returns an empty in-memory trace sink.
func NewTraceBuffer() *TraceBuffer { return trace.NewBuffer() }

// NewWallTracer returns a wall-clocked tracer over the given sinks, for
// real executions. With no sinks the tracer is disabled (every call is a
// cheap no-op), so it is safe to construct one unconditionally.
func NewWallTracer(sinks ...trace.Sink) *Tracer { return trace.New(nil, sinks...) }

// NewCounterRegistry returns an empty counter/gauge/histogram registry.
func NewCounterRegistry() *CounterRegistry { return trace.NewRegistry() }

// Problem bundles what a real parallel run needs: the assimilation
// configuration, the member-file directory, the observation network, an
// optional phase recorder, and an optional tracer. It is the one shared
// problem type of every real execution path (declared in internal/plan).
type Problem = plan.Problem

// Declarative plan types: algorithms are declared as specs, compiled into
// explicit per-rank schedules, and interpreted by either substrate.
type (
	// AlgorithmSpec declares one algorithm instance (geometry + ensemble
	// size + reader strategy); build one with SEnKFSpec/PEnKFSpec/LEnKFSpec.
	AlgorithmSpec = plan.Spec
	// CompiledPlan is the explicit per-rank schedule of a spec: who reads
	// what with how many addressing operations, what is sent where at which
	// stage, and where the helper-thread release points are.
	CompiledPlan = plan.Compiled
	// TrackDAG is the substrate-independent structural signature of one
	// processor track (busy spans + stage release instants).
	TrackDAG = plan.TrackDAG
)

// SEnKFSpec declares the paper's schedule: bar reading in ncg concurrent
// groups feeding an l-stage overlapped pipeline.
func SEnKFSpec(dec Decomposition, n, l, ncg int) AlgorithmSpec { return plan.SEnKF(dec, n, l, ncg) }

// PEnKFSpec declares the block-reading baseline.
func PEnKFSpec(dec Decomposition, n int) AlgorithmSpec { return plan.PEnKF(dec, n) }

// LEnKFSpec declares the single-reader baseline.
func LEnKFSpec(dec Decomposition, n int) AlgorithmSpec { return plan.LEnKF(dec, n) }

// CompilePlan turns a declarative spec into its explicit per-rank schedule.
func CompilePlan(s AlgorithmSpec) (*CompiledPlan, error) { return plan.Compile(s) }

// ExecutePlan runs a compiled plan on the real substrate and returns the
// analysis ensemble. RunSEnKF/RunPEnKF/RunLEnKF are thin wrappers over it.
func ExecutePlan(p Problem, c *CompiledPlan) ([][]float64, error) { return core.ExecutePlan(p, c) }

// TraceDAG reduces trace events (from either substrate) to per-track
// structural signatures, comparable across substrates with DiffDAG.
func TraceDAG(events []TraceEvent) map[string]*TrackDAG { return plan.StructuralDAG(events) }

// DiffDAG reports the first structural difference between two signatures,
// or nil when they are identical.
func DiffDAG(a, b map[string]*TrackDAG) error { return plan.DiffDAG(a, b) }

// RunSEnKF executes the paper's S-EnKF for real: C1 = n_cg·n_sdy I/O ranks
// bar-read the member files in concurrent groups and stream stage blocks to
// C2 = n_sdx·n_sdy compute ranks, whose helper threads overlap data
// arrival with the multi-stage local analysis. Returns the analysis
// ensemble as full fields.
func RunSEnKF(p Problem, pl Plan) ([][]float64, error) {
	return core.RunSEnKF(p, pl)
}

// RunPEnKF executes the block-reading state-of-the-art baseline (refs
// [23, 24]) on dec.NSdx × dec.NSdy ranks.
func RunPEnKF(p Problem, dec Decomposition) ([][]float64, error) {
	return baseline.RunPEnKF(p, dec)
}

// RunLEnKF executes the single-reader baseline (refs [13, 33]): a dedicated
// reader rank reads each member in full and scatters expansion blocks to
// the dec.NSdx × dec.NSdy compute ranks.
func RunLEnKF(p Problem, dec Decomposition) ([][]float64, error) {
	return baseline.RunLEnKF(p, dec)
}

// AutoTune runs Algorithm 2 (restructured for large processor counts):
// given the model parameters, a processor budget and the earnings-rate
// threshold ε of Eq. (14), it returns the economic configuration.
func AutoTune(p ModelParams, np int, eps float64) (Tuned, bool) {
	return p.AutoTuneFast(np, eps)
}

// AutoTuneConstrained is AutoTune restricted by tc.
func AutoTuneConstrained(p ModelParams, np int, eps float64, tc TuneConstraints) (Tuned, bool) {
	return p.AutoTuneConstrained(np, eps, tc)
}

// DefaultMachine is the calibrated paper-scale machine model: the §5.1
// problem on a Lustre-like file system with a Hockney-model network.
func DefaultMachine() Machine { return schedule.DefaultConfig() }

// SimulateSEnKF runs the S-EnKF schedule on the discrete-event machine with
// the given parameter choice.
func SimulateSEnKF(m Machine, ch Choice) (SimResult, error) {
	return schedule.SimulateSEnKF(m, ch)
}

// SimulatePEnKF runs the block-reading baseline schedule on nsdx × nsdy
// simulated processors.
func SimulatePEnKF(m Machine, nsdx, nsdy int) (SimResult, error) {
	return schedule.SimulatePEnKF(m, nsdx, nsdy)
}

// SimulateLEnKF runs the single-reader baseline schedule.
func SimulateLEnKF(m Machine, nsdx, nsdy int) (SimResult, error) {
	return schedule.SimulateLEnKF(m, nsdx, nsdy)
}

// ChooseDecomposition picks the halo-minimizing (n_sdx, n_sdy) for np
// processors.
func ChooseDecomposition(p ModelParams, np int) (nsdx, nsdy int, err error) {
	return schedule.ChooseDecomposition(p, np)
}

// PaperFigures returns a figure suite at the paper's scale (Figures 1, 5,
// 9, 10, 11, 12, 13 of the evaluation).
func PaperFigures() *FigureSuite { return figures.NewSuite(figures.PaperOptions()) }

// QuickFigures returns a reduced-scale figure suite that runs in seconds.
func QuickFigures() *FigureSuite { return figures.NewSuite(figures.QuickOptions()) }

// NewFigureSuite builds a suite over custom options.
func NewFigureSuite(o FigureOptions) *FigureSuite { return figures.NewSuite(o) }

// PaperFigureOptions returns the paper-scale experiment options.
func PaperFigureOptions() FigureOptions { return figures.PaperOptions() }

// QuickFigureOptions returns the reduced-scale experiment options.
func QuickFigureOptions() FigureOptions { return figures.QuickOptions() }

// AblationResult is one rung of the co-design ablation ladder.
type AblationResult = figures.Ablation

// WriteAblations renders an ablation ladder as a text table.
func WriteAblations(w io.Writer, np int, abs []AblationResult) error {
	return figures.WriteAblations(w, np, abs)
}

// Fault injection and resilience types. A FaultPlan is a deterministic,
// seeded description of what goes wrong during a run — OST outage/degraded
// windows, straggler processors, damaged member files, I/O-rank deaths. The
// same plan drives both the simulated substrate (Machine.Faults) and real
// executions (RunSEnKFResilient / FaultPlan.Apply).
type (
	// FaultPlan is a deterministic fault-injection scenario.
	FaultPlan = faults.Plan
	// FaultGeometry describes the run a generated plan must fit.
	FaultGeometry = faults.Geometry
	// OSTWindow is a storage-target outage or degraded-bandwidth interval.
	OSTWindow = faults.OSTWindow
	// FileFault is per-member file damage (missing/truncated/corrupt/transient).
	FileFault = faults.FileFault
	// RankDeath kills one I/O reader at a chosen point of the schedule.
	RankDeath = faults.RankDeath
	// CycleCrash kills the whole process at a cycle boundary of a cycled
	// experiment — the fault the checkpoint/resume machinery survives.
	CycleCrash = faults.CycleCrash
	// Resilience configures the hardened real execution.
	Resilience = core.Resilience
	// DegradedResult is the structured outcome of a resilient run.
	DegradedResult = core.DegradedResult
	// DroppedMember records one member excluded from a degraded analysis.
	DroppedMember = core.DroppedMember
	// RetryPolicy bounds ensio read retries with exponential backoff.
	RetryPolicy = ensio.RetryPolicy
	// EnsembleInfo describes an on-disk ensemble directory.
	EnsembleInfo = ensio.DirInfo
)

// GenerateFaultPlan derives a reproducible fault plan of the given
// intensity (0 = empty plan, 1 = nominal, >1 = harsher) for a run shaped
// by g. The same (seed, intensity, geometry) always yields the same plan.
func GenerateFaultPlan(seed uint64, intensity float64, g FaultGeometry) *FaultPlan {
	return faults.Generate(seed, intensity, g)
}

// RunSEnKFResilient executes S-EnKF hardened against I/O failures:
// unreadable or corrupted members are dropped (down to Resilience.MinMembers)
// with a variance-preserving inflation reweighting, plan-declared reader
// deaths fail over inside their concurrent group, and transient read errors
// are retried with backoff. See DegradedResult for what comes back.
func RunSEnKFResilient(p Problem, pl Plan, r Resilience) (*DegradedResult, error) {
	return core.RunSEnKFResilient(p, pl, r)
}

// InspectEnsemble validates an on-disk ensemble directory (n <= 0 scans
// for the member count) and returns its geometry.
func InspectEnsemble(dir string, n int) (EnsembleInfo, error) {
	return ensio.InspectDir(dir, n)
}

// Performance-observability types: critical-path extraction, model-vs-
// measured drift, tuner explainability, run reports and the bench
// regression pipeline.
type (
	// CriticalPath is the blocking chain explaining a run's end-to-end time.
	CriticalPath = critpath.Path
	// CritPathSegment is one segment of a critical path.
	CritPathSegment = critpath.Segment
	// StagePipelineOverlap is the per-stage hidden-I/O accounting.
	StagePipelineOverlap = critpath.StageOverlap
	// ModelMeasured carries measured per-stage T_read/T_comm/T_comp.
	ModelMeasured = costmodel.Measured
	// ModelDriftReport compares Eq. 7–10 predictions against measurements.
	ModelDriftReport = costmodel.DriftReport
	// TuneSearchTrace records the full Algorithm 1/2 search for -explain.
	TuneSearchTrace = costmodel.SearchTrace
	// RunReport is the structured outcome of one traced run.
	RunReport = report.Report
	// BenchRecord is the content of one versioned BENCH_<n>.json.
	BenchRecord = bench.Record
	// BenchRunDelta compares one bench run across two records.
	BenchRunDelta = bench.RunDelta
	// ProfileServer is a running pprof endpoint.
	ProfileServer = profiling.Server
)

// ExtractCriticalPath walks the trace's span DAG backwards from the
// last-ending phase span and returns the chain of segments explaining the
// end-to-end time (gaps appear as synthetic "blocked" segments).
func ExtractCriticalPath(events []TraceEvent) (CriticalPath, error) {
	return critpath.Extract(events)
}

// StagePipelineOverlaps computes, per stage, how much of the I/O activity
// was hidden behind computation — overlap efficiency against the ideal
// §4.2 pipeline (stage 0 exposed, stages ≥ 1 fully hidden).
func StagePipelineOverlaps(events []TraceEvent) []StagePipelineOverlap {
	return critpath.StageOverlaps(events)
}

// ModelDrift compares the model's predictions for choice ch against
// measured per-stage times: signed relative error per term plus
// coefficients recalibrated to reproduce the measurements.
func ModelDrift(p ModelParams, ch Choice, m ModelMeasured) ModelDriftReport {
	return p.Drift(ch, m)
}

// AutoTuneExplained is AutoTuneConstrained with the full Algorithm 1/2
// search table attached (the Eq. 13–14 earnings-rate series and stopping
// points); senkf-tune -explain prints it.
func AutoTuneExplained(p ModelParams, np int, eps float64, tc TuneConstraints) (Tuned, *TuneSearchTrace, bool) {
	return p.AutoTuneExplained(np, eps, tc)
}

// WriteChromeTrace encodes events as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error { return trace.WriteChrome(w, events) }

// ReadChromeTrace decodes a Chrome trace-event JSON file (as written by
// TraceBuffer.WriteChrome) back into events.
func ReadChromeTrace(r io.Reader) ([]TraceEvent, error) { return trace.ReadChrome(r) }

// ParseCountersCSV ingests a CounterRegistry CSV dump into a flat
// "kind/name/field" map for report attachment.
func ParseCountersCSV(r io.Reader) (map[string]float64, error) {
	return report.ParseCountersCSV(r)
}

// BuildRunReport computes the structured run report — phase breakdowns,
// overlap shares, critical path, per-stage pipeline efficiency and (when
// the trace carries a tuner prediction) model drift — from trace events
// plus optional counters.
func BuildRunReport(events []TraceEvent, counters map[string]float64) (*RunReport, error) {
	return report.Build(events, counters)
}

// CollectBenchRecord runs the suite's P-EnKF/S-EnKF ladder and assembles
// a bench record (Version is assigned when written).
func CollectBenchRecord(s *FigureSuite, scale string) (BenchRecord, error) {
	return bench.FromSuite(s, scale)
}

// LatestBenchRecord loads the highest-versioned BENCH_<n>.json in dir.
func LatestBenchRecord(dir string) (BenchRecord, string, bool, error) {
	return bench.LatestRecord(dir)
}

// WriteBenchRecord stores rec in dir as the next BENCH_<n>.json version
// and returns the written path.
func WriteBenchRecord(dir string, rec BenchRecord) (string, error) {
	return bench.WriteRecord(dir, rec)
}

// CompareBenchRecords matches runs by (algorithm, np) and flags wall-time
// regressions beyond the relative tolerance.
func CompareBenchRecords(prev, cur BenchRecord, tol float64) ([]BenchRunDelta, error) {
	return bench.Compare(prev, cur, tol)
}

// BenchRegressions filters compare deltas down to the failures.
func BenchRegressions(deltas []BenchRunDelta) []BenchRunDelta {
	return bench.Regressions(deltas)
}

// StartProfiling serves the standard /debug/pprof/ endpoints (plus
// /debug/metrics) on addr; every senkf binary exposes this behind its
// -profile flag.
func StartProfiling(addr string) (*ProfileServer, error) { return profiling.Serve(addr) }

// WriteRuntimeMetrics dumps a one-shot runtime/metrics snapshot as an
// aligned name/value table.
func WriteRuntimeMetrics(w io.Writer) error { return profiling.WriteMetricsTable(w) }
