// Live-monitoring facade: the streaming observability layer of
// internal/monitor re-exported for the binaries and external users. A
// Monitor tees off a run's trace event stream (never perturbing the
// primary Chrome-trace sink), folds it into live plan conformance against
// the compiled plan's expected DAG, checks every phase against Eq. 7–10
// cost-model budgets (watchdog), serves Prometheus metrics at /metrics and
// a JSON summary at /status, and keeps a flight-recorder ring of the most
// recent events that dumps on the first anomaly.

package senkf

import (
	"senkf/internal/cycle"
	"senkf/internal/faults"
	"senkf/internal/monitor"
	"senkf/internal/plan"
	"senkf/internal/trace"
)

type (
	// Monitor is the live plan-conformance monitor, watchdog, metrics
	// exporter and flight recorder. It is a TraceSink (attach through
	// NewTraceTee or Monitor.Tee) and a RunObserver (attach through
	// Problem.Obs / Machine.Obs).
	Monitor = monitor.Monitor
	// MonitorOptions configures tolerance, flight-recorder size and the
	// anomaly dump path.
	MonitorOptions = monitor.Options
	// MonitorStatus is the live run summary served at /status.
	MonitorStatus = monitor.Status
	// MonitorIncident is one observed anomaly (watchdog trip, deadlock,
	// rank death, plan divergence, injected fault).
	MonitorIncident = monitor.Incident
	// WatchdogVerdict is one budget-watchdog trip: the (proc, phase,
	// stage) that exceeded budget × tolerance.
	WatchdogVerdict = monitor.Verdict
	// CycleSample is one assimilation cycle's outcome as published to the
	// monitor's per-cycle series.
	CycleSample = monitor.CycleSample
	// RunObserver observes run boundaries of either substrate.
	RunObserver = plan.RunObserver
	// TraceTee fans one event stream out to a primary (synchronous) and a
	// secondary (buffered, never blocking the primary) sink.
	TraceTee = trace.Tee
	// MonitorRunError decorates a failed monitored run with blamed plan
	// edges and the flight-recorder dump.
	MonitorRunError = monitor.RunError
	// Straggler names one processor slowed by an injected factor.
	Straggler = faults.Straggler
)

// NewMonitor returns a monitor with its own streaming-metrics registry.
func NewMonitor(opts MonitorOptions) *Monitor { return monitor.New(opts) }

// NewTraceTee fans events out to primary (inline, order-preserving) and
// secondary (via an unbounded FIFO drained by one goroutine, so a slow
// secondary never blocks or reorders the primary).
func NewTraceTee(primary, secondary TraceSink) *TraceTee {
	return trace.NewTee(primary, secondary)
}

// ParseStraggler parses a "proc:factor" specification (e.g. "io/g0/r0:30")
// into an injected straggler.
func ParseStraggler(spec string) (Straggler, error) { return faults.ParseStraggler(spec) }

// RunCyclesObserved is RunCycles with a per-cycle callback — feed
// Monitor.RecordCycle to publish the per-cycle series while running.
func RunCyclesObserved(c CycleConfig, truth []float64, ensemble [][]float64, cycles int, analyze Analyzer, onCycle func(CycleStats)) ([]CycleStats, error) {
	return cycle.RunObserved(c, truth, ensemble, cycles, analyze, onCycle)
}

// SEnKFAnalyzerHooked is SEnKFAnalyzerObserved with the full hook set: the
// template problem's Rec, Tr, Obs and Faults ride into every cycle's run.
func SEnKFAnalyzerHooked(dir string, dec Decomposition, layers, ncg int, tpl Problem) Analyzer {
	return cycle.SEnKFAnalyzerHooked(dir, dec, layers, ncg, tpl)
}
