// End-to-end acceptance of the observability pipeline through the public
// facade: a traced quick-scale S-EnKF run must yield a report whose
// critical path explains the wall time within 1%, whose drift terms are
// finite, and whose bench record passes its own regression gate.
package senkf

import (
	"bytes"
	"math"
	"testing"
)

// tracedQuickSuite runs the quick-scale tuner + S-EnKF simulation with
// tracing and returns the events.
func tracedQuickSuite(t *testing.T, np int) []TraceEvent {
	t.Helper()
	o := QuickFigureOptions()
	buf := NewTraceBuffer()
	tr := NewWallTracer(buf)
	tr.SetCounters(NewCounterRegistry())
	o.Cfg.Tracer = tr
	s := NewFigureSuite(o)
	if _, _, err := s.SEnKFAt(np); err != nil {
		t.Fatal(err)
	}
	return buf.Events()
}

func TestRunReportEndToEnd(t *testing.T) {
	events := tracedQuickSuite(t, 180)

	// The report must survive the same Chrome file round trip senkf-report
	// performs.
	var file bytes.Buffer
	if err := WriteChromeTrace(&file, events); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadChromeTrace(&file)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := BuildRunReport(decoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Acceptance: critical-path span sum equals end-to-end wall time
	// within 1%.
	if rep.CriticalPath.CoverageError > 0.01 {
		t.Fatalf("critical path covers %g of %g (error %.3g%% > 1%%)",
			rep.CriticalPath.Total, rep.Runtime, 100*rep.CriticalPath.CoverageError)
	}
	// Acceptance: per-term drift is reported and finite.
	if rep.Model == nil {
		t.Fatal("no model section in the report")
	}
	if got := len(rep.Model.Drift.Terms); got != 4 {
		t.Fatalf("got %d drift terms, want t_read/t_comm/t_comp/t_total", got)
	}
	for _, term := range rep.Model.Drift.Terms {
		if math.IsNaN(term.RelErr) || math.IsInf(term.RelErr, 0) {
			t.Fatalf("drift term %s: non-finite RelErr %g", term.Term, term.RelErr)
		}
	}
	if rep.Model.Drift.Retuned == nil {
		t.Fatal("report did not retune under measured coefficients")
	}
	// The critical path of a healthy run is dominated by computation.
	if attr := rep.CriticalPath.Attribution; attr["comp/compute"] <= 0 {
		t.Fatalf("no compute time on the critical path: %v", attr)
	}
}

func TestCriticalPathFacade(t *testing.T) {
	events := tracedQuickSuite(t, 60)
	path, err := ExtractCriticalPath(events)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := path.Total(), path.End-path.Start; math.Abs(got-want) > 1e-9*want {
		t.Fatalf("path Total %g != End-Start %g", got, want)
	}
	stages := StagePipelineOverlaps(events)
	if len(stages) == 0 {
		t.Fatal("no stage overlap accounting from a multi-stage run")
	}
	for _, s := range stages {
		if s.Efficiency < 0 || s.Efficiency > 1 {
			t.Fatalf("stage %d efficiency %g outside [0, 1]", s.Stage, s.Efficiency)
		}
	}
}

func TestBenchRecordGateEndToEnd(t *testing.T) {
	o := QuickFigureOptions()
	o.ProcCounts = []int{60}
	s := NewFigureSuite(o)
	rec, err := CollectBenchRecord(s, "quick")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := WriteBenchRecord(dir, rec); err != nil {
		t.Fatal(err)
	}
	prev, _, ok, err := LatestBenchRecord(dir)
	if err != nil || !ok {
		t.Fatalf("LatestBenchRecord: ok=%v err=%v", ok, err)
	}
	deltas, err := CompareBenchRecords(prev, rec, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if reg := BenchRegressions(deltas); len(reg) != 0 {
		t.Fatalf("deterministic self-comparison regressed: %v", reg)
	}
}
