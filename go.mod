module senkf

go 1.22
